package transport

import (
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// path builds sender -> (lossy delay link) -> receiver.
func path(t *testing.T, lossP float64, delay time.Duration, rto time.Duration) (*sim.Scheduler, *Sender, *Receiver, *netem.Link) {
	t.Helper()
	s := sim.NewScheduler()
	ids := &netem.IDGen{}
	snd := NewSender(s, ids, nil, "flow", "imsi1")
	if rto > 0 {
		snd.RTO = rto
	}
	rcv := NewReceiver(s, snd)
	link := netem.NewLink("path", s, 100e6, delay, 1<<20, rcv)
	if lossP > 0 {
		link.Loss = &netem.BernoulliLoss{P: lossP, RNG: sim.NewRNG(9)}
	}
	snd.Dst = link
	return s, snd, rcv, link
}

func TestLosslessTransferDeliversEverythingOnce(t *testing.T) {
	s, snd, rcv, _ := path(t, 0, 5*time.Millisecond, 0)
	finished := false
	snd.Transfer(100, func() { finished = true })
	s.RunUntil(30 * time.Second)
	if !finished {
		t.Fatal("transfer did not complete")
	}
	if rcv.UniqueBytes() != 100*1400 {
		t.Fatalf("unique bytes = %d", rcv.UniqueBytes())
	}
	if rcv.DuplicateBytes() != 0 {
		t.Fatalf("duplicates on a clean path: %d", rcv.DuplicateBytes())
	}
	sent, unique, rtx, spurious := snd.Stats()
	if sent != unique || rtx != 0 || spurious != 0 {
		t.Fatalf("stats = %d/%d/%d/%d", sent, unique, rtx, spurious)
	}
	if snd.AckedBytes() != 100*1400 {
		t.Fatalf("acked = %d", snd.AckedBytes())
	}
}

func TestLossyTransferRecovers(t *testing.T) {
	s, snd, rcv, _ := path(t, 0.2, 5*time.Millisecond, 0)
	finished := false
	snd.Transfer(200, func() { finished = true })
	s.RunUntil(5 * time.Minute)
	if !finished {
		t.Fatal("transfer did not complete over a 20% lossy path")
	}
	if rcv.UniqueBytes() != 200*1400 {
		t.Fatalf("unique bytes = %d, want full transfer", rcv.UniqueBytes())
	}
	_, _, rtx, _ := snd.Stats()
	if rtx == 0 {
		t.Fatal("no retransmissions despite 20% loss")
	}
}

func TestSpuriousRetransmissionOverCharges(t *testing.T) {
	// §3.1 cause (4): an RTO shorter than the path RTT retransmits
	// segments whose originals (or ACKs) were merely slow. The
	// network carries — and the gateway would charge — more bytes
	// than the receiver's distinct payload.
	s, snd, rcv, link := path(t, 0, 80*time.Millisecond, 100*time.Millisecond)
	// RTT = 80ms forward + 10ms reverse = 90ms; RTO 100ms with any
	// queueing jitter fires spuriously. Tighten further:
	snd.RTO = 60 * time.Millisecond
	finished := false
	snd.Transfer(300, func() { finished = true })
	s.RunUntil(2 * time.Minute)
	if !finished {
		t.Fatal("transfer did not complete")
	}
	sent, unique, rtx, _ := snd.Stats()
	if rtx == 0 {
		t.Fatal("no spurious retransmissions with RTO < RTT")
	}
	if sent <= unique {
		t.Fatal("sent volume not inflated")
	}
	// The metering point (the link) carried every copy...
	if link.Stats.InBytes != sent {
		t.Fatalf("link carried %d, sender sent %d", link.Stats.InBytes, sent)
	}
	// ...but the application received each byte once: the charging
	// gap is exactly the duplicate volume.
	if rcv.UniqueBytes() != unique {
		t.Fatalf("unique delivered = %d, want %d", rcv.UniqueBytes(), unique)
	}
	if rcv.DuplicateBytes() == 0 {
		t.Fatal("no duplicates at the receiver")
	}
	overCharge := float64(sent-unique) / float64(unique)
	if overCharge < 0.05 {
		t.Fatalf("over-charge ratio = %.3f, expected a visible gap", overCharge)
	}
}

func TestProperRTOAvoidsSpuriousRetransmission(t *testing.T) {
	s, snd, rcv, _ := path(t, 0, 80*time.Millisecond, 500*time.Millisecond)
	finished := false
	snd.Transfer(300, func() { finished = true })
	s.RunUntil(2 * time.Minute)
	if !finished {
		t.Fatal("transfer did not complete")
	}
	_, _, rtx, _ := snd.Stats()
	if rtx != 0 {
		t.Fatalf("retransmitted %d bytes on a clean path with RTO >> RTT", rtx)
	}
	if rcv.DuplicateBytes() != 0 {
		t.Fatal("duplicates with proper RTO")
	}
}

func TestMaxRetriesPreventsWedging(t *testing.T) {
	// A fully black-holed path: the transfer must still complete
	// (the application tolerates loss) after exhausting retries.
	s := sim.NewScheduler()
	ids := &netem.IDGen{}
	snd := NewSender(s, ids, netem.NodeFunc(func(*netem.Packet) {}), "f", "i")
	snd.MaxRetries = 2
	snd.RTO = 50 * time.Millisecond
	finished := false
	snd.Transfer(10, func() { finished = true })
	s.RunUntil(time.Minute)
	if finished {
		// With every segment black-holed nothing is ever acked, so
		// done (which requires acks) must NOT fire...
		t.Fatal("transfer claimed completion on a black hole")
	}
	// ...but the sender must have stopped retransmitting.
	sentBefore, _, _, _ := snd.Stats()
	s.RunUntil(2 * time.Minute)
	sentAfter, _, _, _ := snd.Stats()
	if sentAfter != sentBefore {
		t.Fatalf("sender still transmitting after max retries: %d -> %d", sentBefore, sentAfter)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	s := sim.NewScheduler()
	ids := &netem.IDGen{}
	var got int
	snd := NewSender(s, ids, netem.NodeFunc(func(*netem.Packet) { got++ }), "f", "i")
	snd.Window = 8
	snd.RTO = time.Hour // no retransmissions
	snd.Transfer(100, nil)
	s.RunUntil(time.Second)
	if got != 8 {
		t.Fatalf("initial burst = %d, want window of 8", got)
	}
}

func TestBackoffFactorSlowsRetransmissions(t *testing.T) {
	// On a fully black-holed path every timer fires; exponential
	// backoff must space them out while factor <= 1 keeps the paper's
	// fixed-RTO cadence byte-identically.
	run := func(factor float64) uint64 {
		s, snd, _, _ := path(t, 1, 5*time.Millisecond, 100*time.Millisecond)
		snd.BackoffFactor = factor
		snd.Transfer(1, nil)
		s.RunUntil(time.Second)
		_, _, rtx, _ := snd.Stats()
		return rtx
	}
	fixed := run(0)
	same := run(1)
	backed := run(2)
	if fixed != same {
		t.Fatalf("factor 1 changed behaviour: %d vs %d retransmissions", same, fixed)
	}
	if fixed == 0 {
		t.Fatal("no retransmissions on a black-holed path")
	}
	// Fixed RTO: retries at 100ms intervals. Factor 2: 100+200+400+800
	// exceeds the 1s horizon after 3 retries.
	if backed >= fixed {
		t.Fatalf("backoff did not slow retries: %d vs %d", backed, fixed)
	}
}
