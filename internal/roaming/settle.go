package roaming

import "fmt"

// PartyID indexes the four balance sheets of one roaming settlement.
type PartyID int

const (
	// Subscriber is the roaming end user (billed by its home operator).
	Subscriber PartyID = iota
	// Home is the subscriber's home operator.
	Home
	// Visited is the operator whose network the subscriber roams in.
	Visited
	// Vendor is the edge application vendor.
	Vendor
	numParties
)

// String implements fmt.Stringer.
func (p PartyID) String() string {
	switch p {
	case Subscriber:
		return "subscriber"
	case Home:
		return "home"
	case Visited:
		return "visited"
	case Vendor:
		return "vendor"
	default:
		return fmt.Sprintf("PartyID(%d)", int(p))
	}
}

// Transfer is one directed payment of the settlement pass, in the
// ledger's integer volume units (bytes of charged traffic).
type Transfer struct {
	From, To PartyID
	Amount   uint64
}

// Settlement is the netted result of one cycle: the transfer list and
// the per-party balance deltas it implies. Built from verified chain
// volumes only — a chain the home operator rejected settles nothing.
type Settlement struct {
	Transfers []Transfer
	Balances  [numParties]int64
}

// Settle nets one verified cycle. The money follows the chain
// backwards: the subscriber pays its home operator the billed X2, the
// home operator passes X2 on to the visited operator that carried the
// traffic, and the visited operator pays the vendor the X1 their
// segment settled at. The home operator nets to zero by construction
// (billing passthrough), the visited operator keeps the spread
// X2 − X1 (its carriage margin — negative when the loss was its own),
// and the vendor collects exactly its settled revenue.
func Settle(x1, x2 uint64) Settlement {
	s := Settlement{
		Transfers: []Transfer{
			{From: Subscriber, To: Home, Amount: x2},
			{From: Home, To: Visited, Amount: x2},
			{From: Visited, To: Vendor, Amount: x1},
		},
	}
	for _, tr := range s.Transfers {
		s.Balances[tr.From] -= int64(tr.Amount)
		s.Balances[tr.To] += int64(tr.Amount)
	}
	return s
}

// ZeroSum reports whether the settlement's balances net to exactly
// zero — every transfer has two sides, so any violation means the
// balances were tampered after construction.
func (s Settlement) ZeroSum() bool {
	var sum int64
	for _, b := range s.Balances {
		sum += b
	}
	return sum == 0
}

// Book accumulates settlements across cycles, one running balance per
// party.
type Book struct {
	Cycles   int
	Balances [numParties]int64
}

// Add folds one cycle's settlement into the running balances.
func (b *Book) Add(s Settlement) {
	b.Cycles++
	for i, d := range s.Balances {
		b.Balances[i] += d
	}
}

// ZeroSum reports whether the running balances net to exactly zero.
func (b *Book) ZeroSum() bool {
	var sum int64
	for _, bal := range b.Balances {
		sum += bal
	}
	return sum == 0
}
