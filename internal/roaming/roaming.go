// Package roaming models TLC's multi-operator topology: a subscriber
// of a home operator roams into a visited network where an edge vendor
// serves it locally. Three parties now meter independently — the
// vendor at its egress, the visited operator at its ingress and radio,
// the home operator at its billing gateway — and the charging gap of
// the bilateral game composes across the handover.
//
// The settlement runs Algorithm 1 twice: the vendor and the visited
// operator settle the downstream segment at X1, the visited operator
// relays exactly X1 upstream (countersigned — see poc.Chain) and
// settles the upstream segment with the home operator at X2, which is
// what the subscriber is billed. Under honest play the chained gap
// against delivered volume D is
//
//	X2 − D = c·L2 + c²·L1   ≤   c·(L1 + L2)
//
// where L1 is the loss upstream of the visited ingress and L2 the
// loss inside the visited network: each segment's Algorithm 1 bound
// (Theorem 1) applies to its own loss, and the downstream residual is
// attenuated by another factor c as it transits the second game. The
// per-cycle settlement nets the inter-operator balances to exactly
// zero under honest play (see Settle); a byzantine visited operator
// that inflates, replays or tampers the relayed evidence never gets a
// chain past the home operator's verifier (see Forger).
package roaming

import (
	"tlc/internal/core"
	"tlc/internal/sim"
)

// Truth is the ground-truth byte flow of one roaming cycle, measured
// at the three points of the path.
type Truth struct {
	// Sent is the vendor's egress volume.
	Sent float64
	// Arrived is what reached the visited operator's ingress
	// (Sent minus the loss upstream of the visited network).
	Arrived float64
	// Delivered is what reached the subscriber's radio (Arrived minus
	// the loss inside the visited network).
	Delivered float64
}

// L1 is the loss upstream of the visited ingress.
func (t Truth) L1() float64 { return t.Sent - t.Arrived }

// L2 is the loss inside the visited network.
func (t Truth) L2() float64 { return t.Arrived - t.Delivered }

// Views derives the honest parties' views of the two segments.
// Downstream, the vendor knows its sent volume exactly and estimates
// the visited ingress; the visited operator knows its ingress exactly
// and estimates the vendor egress. Upstream, the home operator's
// gateway accounting tells it what the visited operator relayed
// (estimate of the claim) and the subscriber-side records what was
// delivered. The visited operator's upstream view is derived from the
// settled X1 at negotiation time, not here.
func (t Truth) Views() (vendor, visitedDown, home core.View) {
	vendor = core.View{Sent: t.Sent, Received: t.Arrived}
	visitedDown = core.View{Sent: t.Sent, Received: t.Arrived}
	home = core.View{Sent: t.Arrived, Received: t.Delivered}
	return vendor, visitedDown, home
}

// ChainedGapBound is the honest-play bound on X2 − Delivered: each
// segment contributes its Algorithm 1 share, the downstream one
// attenuated once more by c.
func ChainedGapBound(c, l1, l2 float64) float64 {
	return c*l2 + c*c*l1
}

// Game is the in-process chained Algorithm 1 game — the crypto-free
// twin of protocol.RunRoaming, fast enough for parameter sweeps.
type Game struct {
	// C is the lost-data weight of the published plan.
	C float64
	// Vendor, Visited and Home choose each party's strategy. The
	// visited operator plays the operator side downstream and the
	// claimant side upstream with the same strategy.
	Vendor  core.Strategy
	Visited core.Strategy
	Home    core.Strategy
	// MaxRounds caps each segment's negotiation.
	MaxRounds int
}

// Outcome is one chained settlement.
type Outcome struct {
	// X1 and X2 are the two settled volumes; the subscriber is billed
	// X2.
	X1, X2 float64
	// RoundsA and RoundsB count each segment's claims.
	RoundsA, RoundsB int
	// Converged reports whether both segments settled.
	Converged bool
}

// Play runs the chained game for one cycle of ground truth. The
// visited operator enters the upstream segment claiming the settled
// X1 — the same invariant the countersignature pins on the wire.
func (g Game) Play(t Truth, rng *sim.RNG) (Outcome, error) {
	vendor, visitedDown, home := t.Views()
	a, err := core.Negotiate(core.Config{
		C:            g.C,
		Edge:         g.Vendor,
		Operator:     g.Visited,
		EdgeView:     vendor,
		OperatorView: visitedDown,
		MaxRounds:    g.MaxRounds,
		RNG:          rng.Fork("down"),
	})
	if err != nil {
		return Outcome{}, err
	}
	if !a.Converged {
		return Outcome{RoundsA: a.Rounds}, nil
	}
	b, err := core.Negotiate(core.Config{
		C:            g.C,
		Edge:         g.Visited,
		Operator:     g.Home,
		EdgeView:     core.View{Sent: a.X, Received: a.X},
		OperatorView: home,
		MaxRounds:    g.MaxRounds,
		RNG:          rng.Fork("up"),
	})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		X1:        a.X,
		X2:        b.X,
		RoundsA:   a.Rounds,
		RoundsB:   b.Rounds,
		Converged: b.Converged,
	}, nil
}
