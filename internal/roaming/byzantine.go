package roaming

import (
	"tlc/internal/poc"
	"tlc/internal/sim"
)

// ByzMode enumerates the byzantine visited operator's chain-level
// attacks. The visited operator is an insider: it holds a genuine key,
// plays the downstream negotiation honestly (the vendor will not
// settle otherwise), and forges only the evidence it relays upstream.
type ByzMode int

const (
	// ByzChainInflate re-countersigns the downstream proof with an
	// inflated relayed volume and claims the inflated volume upstream:
	// the endorsement signature is genuine but contradicts the settled
	// X it binds.
	ByzChainInflate ByzMode = iota
	// ByzChainReplay substitutes an already-settled cycle's link,
	// double-billing the old vendor segment.
	ByzChainReplay
	// ByzChainTamper flips a bit in the countersignature, the shape of
	// any post-hoc edit of the relayed evidence.
	ByzChainTamper
	// ByzChainTruncate drops the vendor link entirely, presenting the
	// upstream settlement as the whole story.
	ByzChainTruncate
)

// ByzChainModes lists every mode for batteries.
var ByzChainModes = []ByzMode{ByzChainInflate, ByzChainReplay, ByzChainTamper, ByzChainTruncate}

// String implements fmt.Stringer.
func (m ByzMode) String() string {
	switch m {
	case ByzChainInflate:
		return "chain-inflate"
	case ByzChainReplay:
		return "chain-replay"
	case ByzChainTamper:
		return "chain-tamper"
	case ByzChainTruncate:
		return "chain-truncate"
	default:
		return "chain-unknown"
	}
}

// Forger is the byzantine visited operator's chain rewriter; its
// Forge method plugs into protocol.RoamingConfig.Forge.
type Forger struct {
	Mode ByzMode
	// Keys is the visited operator's genuine key pair — the insider
	// can produce valid signatures over forged content.
	Keys *poc.KeyPair
	// RNG draws forgery nonces deterministically.
	RNG *sim.RNG
	// Stale is a previously settled chain for ByzChainReplay.
	Stale *poc.Chain
}

// Forge rewrites the honestly assembled chain per the mode. A mode
// missing its material (no stale chain to replay) falls back to
// tampering so a misconfigured battery still exercises a forgery
// instead of silently passing an honest chain.
func (f *Forger) Forge(ch *poc.Chain) *poc.Chain {
	forged := &poc.Chain{Links: append([]poc.ChainLink(nil), ch.Links...), Final: ch.Final}
	switch f.Mode {
	case ByzChainInflate:
		link := &forged.Links[len(forged.Links)-1]
		cs := link.Endorse
		cs.Relayed *= 2
		if err := cs.Sign(f.Keys.Private); err != nil {
			return forged // unsigned edit still fails verification
		}
		link.Endorse = cs
	case ByzChainReplay:
		if f.Stale == nil {
			return f.tamper(forged)
		}
		// Present the already-settled chain wholesale: every signature
		// is genuine and every volume consistent, so only the home
		// operator's replay set stands between the visited operator
		// and billing the cycle twice.
		forged.Links = append([]poc.ChainLink(nil), f.Stale.Links...)
		forged.Final = f.Stale.Final
	case ByzChainTamper:
		return f.tamper(forged)
	case ByzChainTruncate:
		forged.Links = nil
	}
	return forged
}

func (f *Forger) tamper(ch *poc.Chain) *poc.Chain {
	if len(ch.Links) == 0 {
		return ch
	}
	sig := append([]byte(nil), ch.Links[0].Endorse.Signature...)
	if len(sig) > 0 {
		sig[len(sig)/2] ^= 0x10
	}
	ch.Links[0].Endorse.Signature = sig
	return ch
}
