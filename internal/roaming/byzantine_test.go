package roaming

import (
	"crypto/rsa"
	"errors"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

var (
	byzVendorKeys  *poc.KeyPair
	byzVisitedKeys *poc.KeyPair
	byzHomeKeys    *poc.KeyPair
	byzPlan        = poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}
)

func init() {
	rng := sim.NewRNG(9876)
	var err error
	if byzVendorKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("vendor")); err != nil {
		panic(err)
	}
	if byzVisitedKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("visited")); err != nil {
		panic(err)
	}
	if byzHomeKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("home")); err != nil {
		panic(err)
	}
}

func byzRoamConfig(seed int64) protocol.RoamingConfig {
	return protocol.RoamingConfig{
		Plan:            byzPlan,
		VendorKeys:      byzVendorKeys,
		VisitedKeys:     byzVisitedKeys,
		HomeKeys:        byzHomeKeys,
		VendorStrategy:  core.HonestStrategy{},
		VisitedStrategy: core.HonestStrategy{},
		HomeStrategy:    core.HonestStrategy{},
		VendorView:      core.View{Sent: 1000, Received: 1000},
		VisitedViewA:    core.View{Sent: 1000, Received: 1000},
		HomeView:        core.View{Sent: 1000, Received: 900},
		RNG:             sim.NewRNG(seed),
	}
}

// TestByzantineVisitedNeverVerifies runs every chain-level attack of
// the byzantine visited operator against a home operator with a
// persistent verifier. No forged chain may ever be accepted.
func TestByzantineVisitedNeverVerifies(t *testing.T) {
	verifier := poc.NewChainVerifier(byzVendorKeys.Public,
		[]*rsa.PublicKey{byzVisitedKeys.Public}, byzHomeKeys.Public)

	// One honest settled cycle gives the replay mode its material.
	cfg := byzRoamConfig(100)
	cfg.Verifier = verifier
	honest, err := protocol.RunRoaming(cfg)
	if err != nil {
		t.Fatal(err)
	}

	verified := 0
	for mi, mode := range ByzChainModes {
		for seed := int64(0); seed < 5; seed++ {
			forger := &Forger{
				Mode:  mode,
				Keys:  byzVisitedKeys,
				RNG:   sim.NewRNG(1000*int64(mi) + seed),
				Stale: honest.Chain,
			}
			cfg := byzRoamConfig(200 + 100*int64(mi) + seed)
			cfg.Verifier = verifier
			cfg.Forge = forger.Forge
			res, err := protocol.RunRoaming(cfg)
			if err == nil {
				verified++
				t.Errorf("mode %v seed %d: forged chain verified (X2=%d)", mode, seed, res.X2)
				continue
			}
			if !errors.Is(err, protocol.ErrBadChain) {
				t.Errorf("mode %v seed %d: err = %v, want ErrBadChain", mode, seed, err)
			}
		}
	}
	if verified != 0 {
		t.Fatalf("byz_chain_verified = %d, must be 0", verified)
	}

	// The verifier is not burned by the attacks: a fresh honest cycle
	// still settles.
	cfg = byzRoamConfig(300)
	cfg.Verifier = verifier
	if _, err := protocol.RunRoaming(cfg); err != nil {
		t.Fatalf("honest cycle after the battery: %v", err)
	}
}

// TestForgerModesChangeChain sanity-checks each forger actually
// mutates the evidence (a no-op forger would make the battery prove
// nothing).
func TestForgerModesChangeChain(t *testing.T) {
	cfg := byzRoamConfig(400)
	honest, err := protocol.RunRoaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := honest.Chain.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stale := byzRoamConfig(401)
	staleRes, err := protocol.RunRoaming(stale)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range ByzChainModes {
		f := &Forger{Mode: mode, Keys: byzVisitedKeys, RNG: sim.NewRNG(7), Stale: staleRes.Chain}
		forged := f.Forge(honest.Chain)
		data, err := forged.MarshalBinary()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if string(data) == string(base) {
			t.Fatalf("mode %v: forger produced the honest chain", mode)
		}
	}
}
