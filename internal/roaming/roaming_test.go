package roaming

import (
	"math"
	"testing"

	"tlc/internal/core"
	"tlc/internal/sim"
)

func TestChainedGameHonestGapExact(t *testing.T) {
	// With honest play and agreeing views, each segment settles at
	// Charge of the true claims, so the chained gap is exactly
	// c·L2 + c²·L1.
	g := Game{C: 0.5, Vendor: core.HonestStrategy{}, Visited: core.HonestStrategy{}, Home: core.HonestStrategy{}}
	tr := Truth{Sent: 1000, Arrived: 920, Delivered: 850}
	out, err := g.Play(tr, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("honest chained game did not converge")
	}
	x1 := core.Charge(g.C, tr.Sent, tr.Arrived)
	if math.Abs(out.X1-x1) > 1e-9 {
		t.Fatalf("X1 = %v, want %v", out.X1, x1)
	}
	x2 := core.Charge(g.C, x1, tr.Delivered)
	if math.Abs(out.X2-x2) > 1e-9 {
		t.Fatalf("X2 = %v, want %v", out.X2, x2)
	}
	gap := out.X2 - tr.Delivered
	want := ChainedGapBound(g.C, tr.L1(), tr.L2())
	if math.Abs(gap-want) > 1e-9 {
		t.Fatalf("chained gap = %v, want exactly %v", gap, want)
	}
}

// TestChainedGapBoundProperty: under honest play the billed X2 never
// exceeds delivered volume by more than the chained bound, and never
// undercuts the delivered volume — across random truths and weights.
func TestChainedGapBoundProperty(t *testing.T) {
	rng := sim.NewRNG(2)
	for i := 0; i < 500; i++ {
		c := rng.Uniform(0.05, 0.95)
		sent := rng.Uniform(1e5, 1e9)
		arrived := sent * (1 - rng.Uniform(0, 0.3))
		delivered := arrived * (1 - rng.Uniform(0, 0.3))
		tr := Truth{Sent: sent, Arrived: arrived, Delivered: delivered}
		g := Game{C: c, Vendor: core.HonestStrategy{}, Visited: core.HonestStrategy{}, Home: core.HonestStrategy{}}
		out, err := g.Play(tr, rng.Fork("play"))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged {
			t.Fatalf("case %d: no convergence", i)
		}
		gap := out.X2 - delivered
		bound := ChainedGapBound(c, tr.L1(), tr.L2())
		if gap < -1e-6 || gap > bound+1e-6 {
			t.Fatalf("case %d: gap %v outside [0, %v] (c=%v truth=%+v)", i, gap, bound, c, tr)
		}
		// The loose composition bound of the package doc also holds.
		if gap > c*(tr.L1()+tr.L2())+1e-6 {
			t.Fatalf("case %d: gap %v exceeds c·(L1+L2)", i, gap)
		}
	}
}

// TestChainedSelfishBounded: a selfish visited operator playing the
// randomized under/over-claiming strategy still cannot push the billed
// volume outside the span of the honest parties' views — each segment
// inherits Theorem 2's claim bounds.
func TestChainedSelfishBounded(t *testing.T) {
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		tr := Truth{Sent: 1e6, Arrived: 9.2e5, Delivered: 8.5e5}
		g := Game{
			C:       0.5,
			Vendor:  core.HonestStrategy{},
			Visited: core.RandomSelfishStrategy{},
			Home:    core.HonestStrategy{},
		}
		out, err := g.Play(tr, rng.Fork("play"))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged {
			continue // selfish play may exhaust rounds; that is a non-settlement, not a breach
		}
		if out.X2 > tr.Sent || out.X2 < 0 {
			t.Fatalf("case %d: billed %v outside [0, sent=%v]", i, out.X2, tr.Sent)
		}
	}
}

func TestSettleZeroSumAndShape(t *testing.T) {
	s := Settle(900, 950)
	if !s.ZeroSum() {
		t.Fatalf("settlement not zero-sum: %+v", s.Balances)
	}
	if s.Balances[Subscriber] != -950 {
		t.Fatalf("subscriber balance %d, want -950", s.Balances[Subscriber])
	}
	if s.Balances[Home] != 0 {
		t.Fatalf("home balance %d, want 0 (billing passthrough)", s.Balances[Home])
	}
	if s.Balances[Visited] != 50 {
		t.Fatalf("visited balance %d, want X2-X1 = 50", s.Balances[Visited])
	}
	if s.Balances[Vendor] != 900 {
		t.Fatalf("vendor balance %d, want X1 = 900", s.Balances[Vendor])
	}
}

// TestSettleZeroSumProperty: every cycle of honest chained play nets
// to zero, per cycle and accumulated across the whole book, and the
// vendor is always made whole at exactly X1.
func TestSettleZeroSumProperty(t *testing.T) {
	rng := sim.NewRNG(4)
	var book Book
	for i := 0; i < 1000; i++ {
		c := rng.Uniform(0.05, 0.95)
		sent := rng.Uniform(1e5, 1e8)
		arrived := sent * (1 - rng.Uniform(0, 0.4))
		delivered := arrived * (1 - rng.Uniform(0, 0.4))
		g := Game{C: c, Vendor: core.HonestStrategy{}, Visited: core.HonestStrategy{}, Home: core.HonestStrategy{}}
		out, err := g.Play(Truth{Sent: sent, Arrived: arrived, Delivered: delivered}, rng.Fork("play"))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged {
			t.Fatalf("case %d: no convergence", i)
		}
		s := Settle(uint64(math.Round(out.X1)), uint64(math.Round(out.X2)))
		if !s.ZeroSum() {
			t.Fatalf("case %d: cycle not zero-sum: %+v", i, s.Balances)
		}
		if s.Balances[Vendor] != int64(uint64(math.Round(out.X1))) {
			t.Fatalf("case %d: vendor paid %d, settled %v", i, s.Balances[Vendor], out.X1)
		}
		book.Add(s)
	}
	if !book.ZeroSum() {
		t.Fatalf("book not zero-sum after %d cycles: %+v", book.Cycles, book.Balances)
	}
	if book.Cycles != 1000 {
		t.Fatalf("book counted %d cycles", book.Cycles)
	}
}
