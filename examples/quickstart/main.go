// Quickstart: settle one charging cycle between an edge vendor and a
// cellular operator, then verify the Proof-of-Charging as a third
// party would.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tlc"
)

func main() {
	// §5.3.1 setup: each party generates keys and publishes the
	// public half; both agree on the plan (cycle T and lost-data
	// weight c).
	edgeKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	opKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now().Truncate(time.Hour)
	plan := tlc.Plan{Start: start, End: start.Add(time.Hour), C: 0.5}

	// During the cycle each party metered the traffic at its end:
	// the edge counted 1.0 GB sent, of which 0.93 GB arrived (UDP
	// loss on the air interface). Under legacy 4G/5G they would now
	// disagree about the bill.
	edgeUsage := tlc.Usage{Sent: 1_000_000_000, Received: 930_000_000}
	opUsage := tlc.Usage{Sent: 1_000_000_000, Received: 930_000_000}

	// Loss-selfishness cancellation (§5.1): with both parties
	// playing the rational optimal strategy the negotiation settles
	// in exactly one round at the plan-correct volume.
	opReceipt, edgeReceipt, err := tlc.NegotiateLocal(
		plan, edgeKeys, opKeys, edgeUsage, opUsage,
		tlc.Optimal, tlc.Optimal, time.Now().UnixNano())
	if err != nil {
		log.Fatal(err)
	}

	expected := tlc.ExpectedCharge(plan, edgeUsage)
	fmt.Printf("expected charge x̂ : %d bytes\n", expected)
	fmt.Printf("settled (operator): %d bytes in %d round(s)\n", opReceipt.X, opReceipt.Rounds)
	fmt.Printf("settled (edge)    : %d bytes\n", edgeReceipt.X)
	fmt.Printf("proof size        : %d bytes\n", len(opReceipt.Proof))

	// §5.3.3 public verification: an independent third party (FCC,
	// court, MVNO) audits the proof without seeing any traffic.
	if err := tlc.Verify(opReceipt.Proof, plan, edgeKeys.Public(), opKeys.Public()); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("proof-of-charging : VERIFIED")

	// Tampering is caught: a selfish operator inflating the settled
	// volume breaks the signature chain.
	forged := append([]byte(nil), opReceipt.Proof...)
	forged[len(forged)/2] ^= 0xFF
	if err := tlc.Verify(forged, plan, edgeKeys.Public(), opKeys.Public()); err != nil {
		fmt.Printf("forged proof      : rejected (%v)\n", err)
	} else {
		log.Fatal("forged proof verified!")
	}
}
