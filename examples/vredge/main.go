// VR edge: the edge-powered virtual reality scenario of §2.2 — a 5G
// edge server streams 1080p60 graphical frames downlink to a headset
// (VRidge over GVSP, ~9 Mbps). The walk to the train takes the device
// through patchy coverage: intermittent sub-5s outages open a charging
// gap because the gateway meters frames the headset never receives.
//
//	go run ./examples/vredge
package main

import (
	"fmt"
	"log"
	"time"

	"tlc"
)

func main() {
	fmt.Println("Edge VR offload (GVSP downlink, 1080p60, ~9 Mbps)")
	fmt.Printf("%-22s %8s %12s %12s | %12s %12s\n",
		"radio", "η (%)", "sent (MB)", "recv (MB)", "legacy gap", "TLC-optimal")

	cases := []struct {
		name     string
		gap, dur time.Duration
	}{
		{"steady coverage", 0, 0},
		{"mild intermittency", 25 * time.Second, 1930 * time.Millisecond},
		{"heavy intermittency", 11 * time.Second, 1930 * time.Millisecond},
	}
	for i, cs := range cases {
		rep, err := tlc.RunScenario(tlc.Scenario{
			App:           "VRidge-GVSP",
			Duration:      90 * time.Second,
			C:             0.5,
			OutageMeanGap: cs.gap,
			OutageMeanDur: cs.dur,
			Seed:          int64(2000 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.1f %12.1f %12.1f | %11.2f%% %11.2f%%\n",
			cs.name, rep.DisconnectRatio*100,
			float64(rep.SentBytes)/1e6, float64(rep.ReceivedBytes)/1e6,
			rep.Legacy.GapRatio*100, rep.TLCOptimal.GapRatio*100)
	}

	fmt.Println()
	fmt.Println("Short (<5s) outages are invisible to the core's radio-link-")
	fmt.Println("failure detach, so legacy charging bills the lost frames; TLC's")
	fmt.Println("loss-selfishness cancellation settles at x̂ = x̂o + c·(x̂e − x̂o).")
}
