// Gaming: the online-gaming acceleration scenario of §2.2 — the game
// vendor buys a dedicated high-QoS (QCI=7) bearer for its control
// traffic and settles each charging cycle with the operator over a
// real TCP connection, ending with a mutually signed, publicly
// verifiable Proof-of-Charging.
//
//	go run ./examples/gaming
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tlc"
)

func main() {
	// 1. Run a gaming charging cycle on the emulated testbed under
	//    heavy background load: the dedicated bearer shields the
	//    control traffic, so the usage pair is nearly loss-free.
	rep, err := tlc.RunScenario(tlc.Scenario{
		App:            "Gaming-QCI7",
		Duration:       60 * time.Second,
		C:              0.5,
		BackgroundMbps: 160,
		Seed:           3001,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle usage: sent=%d recv=%d bytes (QCI=7 bearer under 160 Mbps load)\n",
		rep.SentBytes, rep.ReceivedBytes)
	fmt.Printf("legacy gap %.2f%% | TLC-optimal gap %.2f%%\n",
		rep.Legacy.GapRatio*100, rep.TLCOptimal.GapRatio*100)

	// 2. Settle the cycle over TCP: the operator listens, the game
	//    vendor dials in.
	edgeKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	opKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now().Truncate(time.Hour)
	plan := tlc.Plan{Start: start, End: start.Add(time.Hour), C: 0.5}
	usage := tlc.Usage{Sent: rep.SentBytes, Received: rep.ReceivedBytes}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close() //tlcvet:allow errdiscard — demo teardown; listener-close failure is inconsequential

	type result struct {
		receipt *tlc.Receipt
		err     error
	}
	opCh := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			opCh <- result{nil, err}
			return
		}
		defer conn.Close() //tlcvet:allow errdiscard — demo teardown after the negotiation result is captured
		op := tlc.NewNegotiator(tlc.Operator, plan, opKeys, edgeKeys.Public(), usage, tlc.Optimal)
		r, err := op.Negotiate(conn, true)
		opCh <- result{r, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close() //tlcvet:allow errdiscard — demo teardown after the negotiation result is captured
	edge := tlc.NewNegotiator(tlc.Edge, plan, edgeKeys, opKeys.Public(), usage, tlc.Optimal)
	edgeReceipt, err := edge.Negotiate(conn, false)
	if err != nil {
		log.Fatal(err)
	}
	opRes := <-opCh
	if opRes.err != nil {
		log.Fatal(opRes.err)
	}
	fmt.Printf("settled over TCP: %d bytes in %d round(s)\n", edgeReceipt.X, edgeReceipt.Rounds)

	// 3. Third-party audit: the MVNO reselling the bearer verifies
	//    the receipt before paying the host operator (§5.3.4).
	verifier := tlc.NewVerifier(edgeKeys.Public(), opKeys.Public())
	if err := verifier.Verify(edgeReceipt.Proof, plan); err != nil {
		log.Fatalf("audit failed: %v", err)
	}
	fmt.Println("MVNO audit: proof VERIFIED")
	// A replay of the same proof is rejected.
	if err := verifier.Verify(edgeReceipt.Proof, plan); err != nil {
		fmt.Printf("replayed proof: rejected (%v)\n", err)
	}
}
