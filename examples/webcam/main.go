// Webcam: the outdoor targeted-advertisement scenario of §2.2 — a
// roadside camera streams car images uplink over LTE, 24x7, and the
// advertiser wants to be sure the operator charges faithfully.
//
// The example runs three one-minute charging cycles on the emulated
// testbed at increasing congestion and compares what legacy 4G/5G
// would bill against TLC.
//
//	go run ./examples/webcam
package main

import (
	"fmt"
	"log"
	"time"

	"tlc"
)

func main() {
	fmt.Println("Targeted-ad WebCam (RTSP uplink, 1080p30, ~0.77 Mbps)")
	fmt.Printf("%-10s %12s %12s | %14s %14s %14s\n",
		"bg (Mbps)", "sent (MB)", "recv (MB)", "legacy gap", "TLC-random", "TLC-optimal")

	for i, bg := range []float64{0, 100, 160} {
		rep, err := tlc.RunScenario(tlc.Scenario{
			App:            "WebCam-RTSP",
			Duration:       60 * time.Second,
			C:              0.5,
			BackgroundMbps: bg,
			Seed:           int64(1000 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0f %12.2f %12.2f | %13.2f%% %13.2f%% %13.2f%%\n",
			bg,
			float64(rep.SentBytes)/1e6,
			float64(rep.ReceivedBytes)/1e6,
			rep.Legacy.GapRatio*100,
			rep.TLCRandom.GapRatio*100,
			rep.TLCOptimal.GapRatio*100)
	}

	fmt.Println()
	fmt.Println("The advertiser's 24x7 camera would accumulate the legacy gap")
	fmt.Println("every hour; TLC settles each cycle at the plan-correct volume")
	fmt.Println("in one negotiation round and leaves both sides with a publicly")
	fmt.Println("verifiable receipt.")
}
