// Auditor: the public-verifier role of §5.3.4 — an MVNO (or the FCC,
// or a court) that receives Proof-of-Charging receipts from many
// billing cycles, archives them, and audits the archive offline:
// every proof is re-verified with Algorithm 2, replays are rejected,
// and the validly settled volume is totalled for reconciliation.
//
//	go run ./examples/auditor
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tlc"
)

func main() {
	edgeKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	opKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "tlc-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //tlcvet:allow errdiscard — best-effort temp-dir cleanup on exit
	archive, err := tlc.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A month of hourly cycles condensed to six: each settles and its
	// receipt lands in the auditor's archive.
	start := time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)
	var expected uint64
	for i := 0; i < 6; i++ {
		plan := tlc.Plan{
			Start: start.Add(time.Duration(i) * time.Hour),
			End:   start.Add(time.Duration(i+1) * time.Hour),
			C:     0.5,
		}
		usage := tlc.Usage{
			Sent:     1_000_000 + uint64(i)*50_000,
			Received: 930_000 + uint64(i)*48_000,
		}
		receipt, _, err := tlc.NegotiateLocal(plan, edgeKeys, opKeys,
			usage, usage, tlc.Optimal, tlc.Optimal, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		id, err := archive.Save(receipt)
		if err != nil {
			log.Fatal(err)
		}
		expected += receipt.X
		fmt.Printf("cycle %d: settled %d bytes, archived as %s\n", i, receipt.X, id)
	}

	// The audit: re-run Algorithm 2 over everything.
	report, err := archive.Audit(edgeKeys.Public(), opKeys.Public())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit: %d valid, %d invalid, %d bytes settled in total\n",
		report.Valid, report.Invalid, report.TotalSettled)
	if report.TotalSettled != expected {
		log.Fatalf("reconciliation mismatch: %d != %d", report.TotalSettled, expected)
	}

	entries, err := archive.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\narchive contents:")
	for _, e := range entries {
		fmt.Printf("  %s  [%s, %s)  c=%.2f  %d bytes\n",
			e.ID, e.Start.UTC().Format("15:04"), e.End.UTC().Format("15:04"), e.C, e.X)
	}
	fmt.Println("\nreconciliation OK — the MVNO pays the host operator the audited total.")
}
