package tlc

import (
	"testing"
	"time"
)

func TestSettleMultiOperator(t *testing.T) {
	edgeKeys, _ := testKeys(t)
	opA, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	opB, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2019, 1, 7, 7, 0, 0, 0, time.UTC)
	accounts := []OperatorAccount{
		{
			Name: "operator-B", Plan: Plan{Start: start, End: start.Add(time.Hour), C: 0.5},
			Keys: opB.Public(), Usage: Usage{Sent: 500_000, Received: 480_000},
		},
		{
			Name: "operator-A", Plan: Plan{Start: start, End: start.Add(time.Hour), C: 0.25},
			Keys: opA.Public(), Usage: Usage{Sent: 1_000_000, Received: 900_000},
		},
	}
	keys := map[string]*KeyPair{"operator-A": opA, "operator-B": opB}
	outcomes := SettleMultiOperator(edgeKeys, accounts, keys, Optimal, 99)
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	// Sorted by operator name.
	if outcomes[0].Operator != "operator-A" || outcomes[1].Operator != "operator-B" {
		t.Fatalf("order: %s, %s", outcomes[0].Operator, outcomes[1].Operator)
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Operator, o.Err)
		}
	}
	// Per-operator plans apply independently: c=0.25 for A.
	wantA := ExpectedCharge(accounts[1].Plan, accounts[1].Usage)
	if outcomes[0].Receipt.X != wantA {
		t.Fatalf("operator-A settled %d, want %d", outcomes[0].Receipt.X, wantA)
	}
	// Each proof verifies under its own operator's key only.
	if err := Verify(outcomes[0].Receipt.Proof, accounts[1].Plan, edgeKeys.Public(), opA.Public()); err != nil {
		t.Fatalf("A proof: %v", err)
	}
	if Verify(outcomes[0].Receipt.Proof, accounts[1].Plan, edgeKeys.Public(), opB.Public()) == nil {
		t.Fatal("A proof verified with B's key")
	}
}

func TestSettleMultiOperatorMissingKey(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	start := time.Now().Truncate(time.Hour)
	accounts := []OperatorAccount{{
		Name: "ghost", Plan: Plan{Start: start, End: start.Add(time.Hour), C: 0.5},
		Keys: opKeys.Public(), Usage: Usage{Sent: 1, Received: 1},
	}}
	outcomes := SettleMultiOperator(edgeKeys, accounts, nil, Optimal, 1)
	if outcomes[0].Err == nil {
		t.Fatal("missing operator key not reported")
	}
}

func TestArchiveSaveListAudit(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	plan := testPlan()
	usage := Usage{Sent: 800_000, Received: 760_000}
	a, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := int64(0); i < 3; i++ {
		p := plan
		p.Start = plan.Start.Add(time.Duration(i) * time.Hour)
		p.End = p.Start.Add(time.Hour)
		opR, _, err := NegotiateLocal(p, edgeKeys, opKeys, usage, usage, Optimal, Optimal, 500+i)
		if err != nil {
			t.Fatal(err)
		}
		id, err := a.Save(opR)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	list, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("archive has %d entries", len(list))
	}
	if !list[0].Start.Before(list[1].Start) {
		t.Fatal("archive not ordered by cycle start")
	}
	rep, err := a.Audit(edgeKeys.Public(), opKeys.Public())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 3 || rep.Invalid != 0 {
		t.Fatalf("audit = %+v", rep)
	}
	want := 3 * ExpectedCharge(plan, usage)
	if rep.TotalSettled != want {
		t.Fatalf("TotalSettled = %d, want %d", rep.TotalSettled, want)
	}
	_ = ids
}

func TestArchiveAuditWrongKeys(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	plan := testPlan()
	usage := Usage{Sent: 100, Received: 90}
	a, _ := OpenArchive(t.TempDir())
	opR, _, err := NegotiateLocal(plan, edgeKeys, opKeys, usage, usage, Honest, Honest, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Save(opR); err != nil {
		t.Fatal(err)
	}
	// Swapped keys: the audit flags the receipt instead of passing.
	rep, err := a.Audit(opKeys.Public(), edgeKeys.Public())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid != 0 || rep.Invalid != 1 || len(rep.Failures) != 1 {
		t.Fatalf("audit = %+v", rep)
	}
}
