// Command tlcd runs one side of a TLC charging negotiation over TCP:
// an operator endpoint that serves negotiations, or an edge client
// that settles a cycle against it. It demonstrates the protocol on a
// real network; keys are generated on startup and exchanged over a
// preliminary frame (a production deployment would provision them out
// of band, §5.3.1).
//
// Usage:
//
//	tlcd -role operator -listen :7075 -sent 1000000 -received 930000
//	tlcd -role edge -connect localhost:7075 -sent 1000000 -received 930000 \
//	     -proof-out cycle.poc
//
// The operator serves each connection in its own goroutine (bounded
// by -max-conns), so one stalled client cannot block the others. With
// -http it also exposes a debug endpoint: Prometheus /metrics,
// /healthz, expvar under /debug/vars, and net/http/pprof under
// /debug/pprof/. SIGINT or SIGTERM stops accepting, drains in-flight
// negotiations (bounded by -drain-timeout), logs a final metrics
// snapshot, and exits 0.
//
// The -faults flag injects seeded stream faults (corrupted reads,
// truncated writes, write stalls) into the live connection, and
// -retries lets the edge re-dial through them with exponential
// backoff:
//
//	tlcd -role edge -connect localhost:7075 -sent 1000000 -received 930000 \
//	     -faults corrupt=0.01,truncate=0.02,stall=0.05,stallfor=20ms \
//	     -fault-seed 7 -retries 5
package main

import (
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tlc"
	"tlc/internal/core"
	"tlc/internal/faults"
	"tlc/internal/ledger"
	"tlc/internal/metrics"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/session"
	"tlc/internal/sim"
)

func main() {
	var (
		role     = flag.String("role", "operator", "operator or edge")
		listen   = flag.String("listen", ":7075", "operator listen address")
		connect  = flag.String("connect", "", "edge: operator address to dial")
		sent     = flag.Uint64("sent", 0, "usage view: bytes the edge sent")
		received = flag.Uint64("received", 0, "usage view: bytes the edge received")
		c        = flag.Float64("c", 0.5, "lost-data charging weight")
		cycleDur = flag.Duration("cycle-dur", time.Hour, "charging cycle duration")
		strategy = flag.String("strategy", "optimal", "honest, optimal or random")
		keyPath  = flag.String("key", "", "own private key PEM (from tlckeys); generated if empty")
		proofOut = flag.String("proof-out", "", "write the settled proof here")
		once     = flag.Bool("once", true, "operator: exit after one negotiation")
		faultStr = flag.String("faults", "", "stream fault spec, e.g. corrupt=0.01,truncate=0.02,stall=0.05,stallfor=20ms (see internal/faults)")
		faultSd  = flag.Int64("fault-seed", 1, "seed for the injected fault stream (same seed+spec replays identically)")
		retries  = flag.Int("retries", 1, "edge: dial+settle attempts; transient faults back off exponentially")
		httpAddr = flag.String("http", "", "operator: serve /metrics, /healthz and /debug on this address")
		maxConns = flag.Int("max-conns", 64, "operator: max concurrent negotiations")
		connTO   = flag.Duration("conn-timeout", time.Minute, "per-connection read/write deadline")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "operator shutdown: max wait for in-flight negotiations")
		shards   = flag.Int("session-shards", 8, "operator: session-table shards (power of two)")
		workers  = flag.Int("session-workers", 2, "operator: crypto worker pool size")
		maxSess  = flag.Int("max-sessions", 1<<20, "operator: resident session cap across all shards")
		pending  = flag.Int("session-pending", 1024, "operator: queued frames per shard before overload rejection")
		muxTO    = flag.Duration("mux-conn-timeout", 15*time.Minute, "deadline for multiplexed connections (carry many sessions, so much longer than -conn-timeout)")
		verbose  = flag.Bool("v", false, "log every settlement instead of a 1-in-1024 sample")
		ledDir   = flag.String("ledger-dir", "", "operator: durable settlement ledger directory (empty = no ledger)")
		ledSync  = flag.Int("ledger-fsync", 16, "operator: ledger group-commit window (fsync every N appends; 1 = every append)")
		auditQ   = flag.String("audit", "", "audit query over -ledger-dir, e.g. subscriber=<fingerprint>,cycle=<id>; prints the report and exits")
	)
	flag.Parse()

	if *auditQ != "" {
		if *ledDir == "" {
			log.Fatal("-audit requires -ledger-dir")
		}
		if err := runAudit(os.Stdout, *ledDir, *auditQ); err != nil {
			log.Fatal(err)
		}
		return
	}

	var spec *faults.Spec
	if *faultStr != "" {
		s, err := faults.Parse(*faultStr)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		s = s.WithDefaults()
		spec = &s
	}

	strat := tlc.Optimal
	switch *strategy {
	case "honest":
		strat = tlc.Honest
	case "random":
		strat = tlc.RandomSelfish
	case "optimal":
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	var keys *tlc.KeyPair
	var err error
	if *keyPath != "" {
		keys, err = tlc.LoadKeyPair(*keyPath)
	} else {
		keys, err = tlc.GenerateKeyPair()
	}
	if err != nil {
		log.Fatal(err)
	}
	end := time.Now().Truncate(time.Hour)
	plan := tlc.Plan{Start: end.Add(-*cycleDur), End: end, C: *c}
	usage := tlc.Usage{Sent: *sent, Received: *received}

	switch *role {
	case "operator":
		op := &operator{
			plan: plan, keys: keys, usage: usage, strat: strat,
			proofOut: *proofOut, once: *once, spec: spec, faultSeed: *faultSd,
			maxConns: *maxConns, connTimeout: *connTO, drainTimeout: *drainTO,
			verbose: *verbose, muxTimeout: *muxTO,
		}
		if *ledDir != "" {
			led, err := ledger.Open(ledger.Options{
				Dir: *ledDir, FS: ledger.DirFS{}, SyncEvery: *ledSync,
			}, nil)
			if err != nil {
				log.Fatalf("-ledger-dir: %v", err)
			}
			// The charging-cycle id is the cycle's start instant; the
			// same value an auditor derives from the plan.
			op.led, op.cycle = led, uint64(plan.Start.Unix())
			log.Printf("settlement ledger at %s (cycle %d, fsync every %d)",
				*ledDir, op.cycle, *ledSync)
		}
		var coreStrat core.Strategy = core.OptimalStrategy{}
		switch strat {
		case tlc.Honest:
			coreStrat = core.HonestStrategy{}
		case tlc.RandomSelfish:
			coreStrat = core.RandomSelfishStrategy{}
		}
		procStart := time.Now()
		eng, err := session.NewEngine(session.EngineConfig{
			Config: session.Config{
				Role:     poc.RoleOperator,
				Plan:     poc.Plan{TStart: plan.Start.UnixNano(), TEnd: plan.End.UnixNano(), C: plan.C},
				Key:      keys.Signer(),
				Strategy: coreStrat,
				View:     core.View{Sent: float64(usage.Sent), Received: float64(usage.Received)},
			},
			Shards: *shards, Workers: *workers,
			MaxSessions: *maxSess, MaxPending: *pending,
			Seed:      time.Now().UnixNano(),
			Stopwatch: func() float64 { return time.Since(procStart).Seconds() },
			OnSettle:  op.onSettle,
			Recorder:  op.recorder(),
		})
		if err != nil {
			log.Fatal(err)
		}
		op.engine = eng
		if err := op.run(*listen, *httpAddr); err != nil {
			log.Fatal(err)
		}
	case "edge":
		if *connect == "" {
			log.Fatal("edge role requires -connect")
		}
		runEdge(*connect, plan, keys, usage, strat, *proofOut, spec, *faultSd, *retries, *connTO)
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// wrapFaults interposes the seeded fault-injecting stream when the
// spec carries stream faults; otherwise the connection passes through
// untouched.
func wrapFaults(conn net.Conn, spec *faults.Spec, seed int64) (io.ReadWriter, *faults.Trace) {
	if spec == nil || !spec.StreamActive() {
		return conn, nil
	}
	tr := &faults.Trace{}
	return &faults.Conn{
		Inner: conn, Spec: *spec, RNG: sim.NewRNG(seed), Trace: tr,
		Stall: time.Sleep,
	}, tr
}

// exchangeKeys swaps PKIX-encoded public keys over the connection:
// each side writes its key as one frame and reads the peer's. When
// the caller already read the peer's frame (the operator sniffs the
// first frame to route mux vs legacy conns), it passes the DER in and
// only the write happens here — same wire order either way, since
// both sides write before reading.
func exchangeKeys(conn io.ReadWriter, own *rsa.PublicKey, peerDER []byte) (*rsa.PublicKey, error) {
	der, err := x509.MarshalPKIXPublicKey(own)
	if err != nil {
		return nil, err
	}
	if err := protocol.WriteFrame(conn, der); err != nil {
		return nil, err
	}
	if peerDER == nil {
		peerDER, err = protocol.ReadFrame(conn)
		if err != nil {
			return nil, err
		}
	}
	pub, err := x509.ParsePKIXPublicKey(peerDER)
	if err != nil {
		return nil, err
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("peer key is not RSA")
	}
	return rsaPub, nil
}

// settleLogCount samples the settlement log line: at session-engine
// scale an unconditional log.Printf per settlement serializes every
// crypto worker behind the log mutex. The first settlement always
// logs (single-shot runs keep their line); -v restores every line.
var settleLogCount atomic.Uint64

const settleLogSample = 1024

func logSettled(verbose bool, x uint64, rounds, proofLen int) {
	n := settleLogCount.Add(1)
	if verbose || (n-1)%settleLogSample == 0 {
		log.Printf("settled: %d bytes in %d round(s); proof %d bytes (%d total)",
			x, rounds, proofLen, n)
	}
}

// settle runs key exchange plus one negotiation, timing the whole
// round trip into the protocol latency histogram. Wall-clock reads
// live here, in cmd/, so internal/ stays tlcvet simtime-clean.
// peerDER, when non-nil, is the peer's already-read key frame.
// record, when non-nil, receives the settled proof keyed by the
// peer-key fingerprint (the operator's durable-ledger hook).
func settle(conn io.ReadWriter, role tlc.Role, plan tlc.Plan, keys *tlc.KeyPair,
	usage tlc.Usage, strat tlc.Strategy, initiate bool, proofOut string,
	verbose bool, peerDER []byte,
	record func(peerFP string, x uint64, rounds int, proof []byte)) error {
	start := time.Now()
	peerKey, err := exchangeKeys(conn, keys.Public(), peerDER)
	if err != nil {
		return fmt.Errorf("key exchange: %w", err)
	}
	n := tlc.NewNegotiator(role, plan, keys, peerKey, usage, strat)
	receipt, err := n.Negotiate(conn, initiate)
	if err != nil {
		return fmt.Errorf("negotiate: %w", err)
	}
	protocol.Metrics.NegotiateSeconds.Observe(time.Since(start).Seconds())
	logSettled(verbose, receipt.X, receipt.Rounds, len(receipt.Proof))
	if record != nil {
		der, err := x509.MarshalPKIXPublicKey(peerKey)
		if err != nil {
			return fmt.Errorf("fingerprint peer key: %w", err)
		}
		fp := sha256.Sum256(der)
		record(hex.EncodeToString(fp[:]), receipt.X, receipt.Rounds, receipt.Proof)
	}
	if proofOut != "" {
		if err := os.WriteFile(proofOut, receipt.Proof, 0o644); err != nil {
			return err
		}
		log.Printf("proof written to %s", proofOut)
	}
	return nil
}

// operator serves negotiations concurrently: each accepted connection
// runs in its own goroutine behind a bounded semaphore, so a stalled
// client occupies one slot instead of the whole listener.
type operator struct {
	plan         tlc.Plan
	keys         *tlc.KeyPair
	usage        tlc.Usage
	strat        tlc.Strategy
	proofOut     string
	once         bool
	spec         *faults.Spec
	faultSeed    int64
	maxConns     int
	connTimeout  time.Duration
	drainTimeout time.Duration
	verbose      bool

	// engine, when non-nil, serves multiplexed (TLCMUX1) connections;
	// legacy single-session conns keep the settle path. muxTimeout is
	// the deadline for mux conns, which carry many sessions.
	engine     *session.Engine
	muxTimeout time.Duration

	// led, when non-nil, durably records every settlement (mux and
	// legacy alike) under cycle as the charging-cycle id; ledgerErrs
	// counts appends the store refused (never fatal to serving).
	led        *ledger.Ledger
	cycle      uint64
	ledgerErrs atomic.Uint64

	ln      net.Listener
	closing atomic.Bool
	wg      sync.WaitGroup

	// firstDone fires after the first connection has been served, in
	// success or failure; -once uses it to trigger shutdown.
	firstDone chan struct{}
	firstOnce sync.Once

	// stop, when non-nil, is an extra shutdown trigger equivalent to
	// a signal; tests close it instead of raising SIGTERM.
	stop chan struct{}
}

func (o *operator) run(addr, httpAddr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var debugLn net.Listener
	if httpAddr != "" {
		debugLn, err = net.Listen("tcp", httpAddr)
		if err != nil {
			_ = ln.Close() // already failing; the debug-listen error is the one to report
			return err
		}
	}
	return o.serveWith(ln, debugLn)
}

// serveWith runs the operator on already-bound listeners (debugLn may
// be nil). Split from run so tests can bind port 0 and read the
// chosen addresses back.
func (o *operator) serveWith(ln, debugLn net.Listener) error {
	o.ln = ln
	o.firstDone = make(chan struct{})
	log.Printf("operator listening on %s (plan c=%.2f cycle=[%s, %s))",
		ln.Addr(), o.plan.C, o.plan.Start.Format(time.RFC3339), o.plan.End.Format(time.RFC3339))

	var debug *http.Server
	if debugLn != nil {
		debug = startDebugServer(debugLn)
	}
	if o.engine != nil {
		o.engine.Start()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	acceptErr := make(chan error, 1)
	go o.acceptLoop(acceptErr)

	select {
	case sig := <-sigCh:
		log.Printf("received %s: stopping accept, draining in-flight negotiations", sig)
	case <-o.stop:
	case <-o.firstDone:
		if !o.once {
			// Keep serving; only signals end a long-running operator.
			select {
			case sig := <-sigCh:
				log.Printf("received %s: stopping accept, draining in-flight negotiations", sig)
			case <-o.stop:
			case err := <-acceptErr:
				return err
			}
		}
	case err := <-acceptErr:
		return err
	}

	o.closing.Store(true)
	if err := o.ln.Close(); err != nil {
		log.Printf("listener close: %v", err)
	}
	o.drain()
	if o.engine != nil {
		o.engine.Stop()
	}
	if o.led != nil {
		// Flush the group-commit tail so the last settlements are
		// durable before the process exits; the directory then audits
		// cleanly with tlcd -audit.
		if err := o.led.Close(); err != nil {
			log.Printf("ledger close: %v", err)
		}
		if n := o.ledgerErrs.Load(); n > 0 {
			log.Printf("ledger: %d append(s) failed this run", n)
		}
	}
	if debug != nil {
		if err := debug.Close(); err != nil {
			log.Printf("debug server close: %v", err)
		}
	}
	logFinalSnapshot()
	return nil
}

// acceptLoop accepts until the listener closes, spawning one serving
// goroutine per connection behind the -max-conns semaphore. Accepting
// blocks while all slots are busy, which bounds memory and goroutines
// under a connection flood.
func (o *operator) acceptLoop(acceptErr chan<- error) {
	sem := make(chan struct{}, o.maxConns)
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			if o.closing.Load() {
				return
			}
			acceptErr <- err
			return
		}
		sem <- struct{}{}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			defer func() { <-sem }()
			o.serve(conn)
			o.firstOnce.Do(func() { close(o.firstDone) })
		}()
	}
}

// onSettle is the session engine's per-settlement hook; it shares the
// sampled settlement log with the legacy path. It runs on a crypto
// worker, so the non-logging case is one atomic increment.
func (o *operator) onSettle(conn, sid, x uint64, rounds int) {
	n := settleLogCount.Add(1)
	if o.verbose || (n-1)%settleLogSample == 0 {
		log.Printf("settled: %d bytes in %d round(s) (mux conn %d sid %d; %d total)",
			x, rounds, conn, sid, n)
	}
}

// recordProof appends one settled negotiation to the ledger; the
// subscriber identity is the peer-key fingerprint both settlement
// paths derive from the PKIX DER. Append failures are counted and
// logged, never fatal — charging keeps serving on a sick disk, the
// operator just loses durability (and hears about it).
func (o *operator) recordProof(peerFP string, x uint64, rounds int, proof []byte) {
	rec := ledger.Record{
		Kind:       ledger.KindPoC,
		Cycle:      o.cycle,
		At:         time.Now().UnixNano(),
		Subscriber: peerFP,
		X:          x,
		Rounds:     uint32(rounds),
		Proof:      proof,
	}
	if err := o.led.Append(&rec); err != nil {
		if o.ledgerErrs.Add(1) == 1 {
			log.Printf("ledger append failed (first of possibly many): %v", err)
		}
	}
}

// legacyRecord is recordProof as the legacy settle callback, or nil
// without a ledger.
func (o *operator) legacyRecord() func(string, uint64, int, []byte) {
	if o.led == nil {
		return nil
	}
	return o.recordProof
}

// recorder adapts recordProof to the session engine's hook, or nil
// when no ledger is attached (which keeps KeepProof off and the
// engine's settle path allocation-free).
func (o *operator) recorder() func(session.ProofRecord) {
	if o.led == nil {
		return nil
	}
	return func(pr session.ProofRecord) {
		o.recordProof(pr.PeerFP, pr.X, pr.Rounds, pr.Proof)
	}
}

// runAudit answers an offline audit query over a closed (or live —
// replay is read-only) ledger directory: parse "subscriber=X,cycle=Y",
// replay, print the report.
func runAudit(w io.Writer, dir, query string) error {
	var subscriber string
	var cycle uint64
	var haveCycle bool
	for _, kv := range strings.Split(query, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("-audit: bad term %q (want key=value)", kv)
		}
		switch k {
		case "subscriber":
			subscriber = v
		case "cycle":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("-audit: cycle %q: %v", v, err)
			}
			cycle, haveCycle = n, true
		default:
			return fmt.Errorf("-audit: unknown key %q", k)
		}
	}
	if subscriber == "" || !haveCycle {
		return fmt.Errorf("-audit: need subscriber=<id>,cycle=<n>, got %q", query)
	}
	rep, err := ledger.Audit(ledger.DirFS{}, dir, subscriber, cycle)
	if err != nil {
		if errors.Is(err, ledger.ErrDirNotExist) {
			return fmt.Errorf("-audit: -ledger-dir %s does not exist (check the path)", dir)
		}
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit subscriber=%s cycle=%d\n", rep.Subscriber, rep.Cycle)
	fmt.Fprintf(&b, "  settled: %v\n", rep.Settled)
	fmt.Fprintf(&b, "  usage: ul=%d dl=%d volume=%d across %d record(s)\n",
		rep.UL, rep.DL, rep.Volume(), rep.Records)
	fmt.Fprintf(&b, "  stored: %d CDR(s), %d PoC(s)\n", len(rep.CDRs), len(rep.PoCs))
	for i := range rep.PoCs {
		p := &rep.PoCs[i]
		fmt.Fprintf(&b, "  poc[%d]: x=%d rounds=%d proof=%dB\n", i, p.X, p.Rounds, len(p.Proof))
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// serve routes one accepted connection by its first frame: a TLCMUX1
// hello hands the whole connection to the session engine, anything
// else (a bare PKIX key frame) is a legacy single-session negotiation.
func (o *operator) serve(conn net.Conn) {
	defer conn.Close() //tlcvet:allow errdiscard — negotiation already settled or failed; close is cleanup
	if err := conn.SetDeadline(time.Now().Add(o.connTimeout)); err != nil {
		log.Printf("set deadline for %s: %v", conn.RemoteAddr(), err)
		return
	}
	rw, tr := wrapFaults(conn, o.spec, o.faultSeed)
	first, err := protocol.ReadFrame(rw)
	if err != nil {
		log.Printf("first frame from %s: %v", conn.RemoteAddr(), err)
		return
	}
	if _, ok := session.IsHello(first); ok && o.engine != nil {
		// Mux conns carry many sessions, so they get the longer
		// deadline; per-session progress is bounded by admission
		// control, not the socket clock.
		if err := conn.SetDeadline(time.Now().Add(o.muxTimeout)); err != nil {
			log.Printf("set mux deadline for %s: %v", conn.RemoteAddr(), err)
			return
		}
		if err := o.engine.ServeConn(rw, first); err != nil {
			log.Printf("mux conn %s: %v", conn.RemoteAddr(), err)
		}
	} else if err := settle(rw, tlc.Operator, o.plan, o.keys, o.usage, o.strat,
		true, o.proofOut, o.verbose, first, o.legacyRecord()); err != nil {
		log.Printf("negotiation with %s failed: %v", conn.RemoteAddr(), err)
	}
	if tr != nil {
		log.Printf("fault injection: %s", tr.Summary())
	}
}

// drain waits for in-flight negotiations, giving up after
// -drain-timeout: their per-connection deadlines already bound how
// long an abandoned peer can hold a slot.
func (o *operator) drain() {
	done := make(chan struct{})
	go func() {
		o.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(o.drainTimeout):
		log.Printf("drain timeout after %s: exiting with negotiations in flight", o.drainTimeout)
	}
}

// logFinalSnapshot writes the non-zero registry series to the log so
// a terminated operator leaves its counters behind even without a
// scraper attached.
func logFinalSnapshot() {
	snap := metrics.Default.Snapshot()
	keys := make([]string, 0, len(snap))
	for k, v := range snap {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%g", k, snap[k])
	}
	if b.Len() == 0 {
		log.Printf("final metrics: all zero")
		return
	}
	log.Printf("final metrics:%s", b.String())
}

// startDebugServer serves the observability surface on an
// already-bound listener: Prometheus /metrics, /healthz, expvar at
// /debug/vars, pprof at /debug/pprof/.
func startDebugServer(ln net.Listener) *http.Server {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := metrics.Default.WriteText(w); err != nil {
			log.Printf("/metrics write: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		err := json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
		})
		if err != nil {
			log.Printf("/healthz write: %v", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("debug server: %v", err)
		}
	}()
	log.Printf("debug server on http://%s/metrics", ln.Addr())
	return srv
}

func runEdge(addr string, plan tlc.Plan, keys *tlc.KeyPair, usage tlc.Usage,
	strat tlc.Strategy, proofOut string, spec *faults.Spec, faultSeed int64,
	retries int, connTimeout time.Duration) {
	start := time.Now()
	r := &protocol.Retrier{
		MaxAttempts: retries,
		Sleep:       time.Sleep,
		Elapsed:     func() time.Duration { return time.Since(start) },
	}
	attempts := 0
	err := r.Do(func(attempt int) error {
		attempts++
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return err
		}
		defer conn.Close() //tlcvet:allow errdiscard — negotiation already settled or failed; close is cleanup
		if err := conn.SetDeadline(time.Now().Add(connTimeout)); err != nil {
			return err
		}
		// A fresh fault stream per attempt, seeded off the attempt
		// index so replays of the whole retry sequence are identical.
		rw, tr := wrapFaults(conn, spec, faultSeed+int64(attempt))
		serr := settle(rw, tlc.Edge, plan, keys, usage, strat, false, proofOut, true, nil, nil)
		if tr != nil {
			log.Printf("attempt %d fault injection: %s", attempt+1, tr.Summary())
		}
		return serr
	})
	if err != nil {
		log.Fatalf("after %d attempt(s): %v", attempts, err)
	}
}
