// Command tlcd runs one side of a TLC charging negotiation over TCP:
// an operator endpoint that serves negotiations, or an edge client
// that settles a cycle against it. It demonstrates the protocol on a
// real network; keys are generated on startup and exchanged over a
// preliminary frame (a production deployment would provision them out
// of band, §5.3.1).
//
// Usage:
//
//	tlcd -role operator -listen :7075 -sent 1000000 -received 930000
//	tlcd -role edge -connect localhost:7075 -sent 1000000 -received 930000 \
//	     -proof-out cycle.poc
//
// The -faults flag injects seeded stream faults (corrupted reads,
// truncated writes, write stalls) into the live connection, and
// -retries lets the edge re-dial through them with exponential
// backoff:
//
//	tlcd -role edge -connect localhost:7075 -sent 1000000 -received 930000 \
//	     -faults corrupt=0.01,truncate=0.02,stall=0.05,stallfor=20ms \
//	     -fault-seed 7 -retries 5
package main

import (
	"crypto/rsa"
	"crypto/x509"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"tlc"
	"tlc/internal/faults"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

func main() {
	var (
		role     = flag.String("role", "operator", "operator or edge")
		listen   = flag.String("listen", ":7075", "operator listen address")
		connect  = flag.String("connect", "", "edge: operator address to dial")
		sent     = flag.Uint64("sent", 0, "usage view: bytes the edge sent")
		received = flag.Uint64("received", 0, "usage view: bytes the edge received")
		c        = flag.Float64("c", 0.5, "lost-data charging weight")
		cycleDur = flag.Duration("cycle-dur", time.Hour, "charging cycle duration")
		strategy = flag.String("strategy", "optimal", "honest, optimal or random")
		keyPath  = flag.String("key", "", "own private key PEM (from tlckeys); generated if empty")
		proofOut = flag.String("proof-out", "", "write the settled proof here")
		once     = flag.Bool("once", true, "operator: exit after one negotiation")
		faultStr = flag.String("faults", "", "stream fault spec, e.g. corrupt=0.01,truncate=0.02,stall=0.05,stallfor=20ms (see internal/faults)")
		faultSd  = flag.Int64("fault-seed", 1, "seed for the injected fault stream (same seed+spec replays identically)")
		retries  = flag.Int("retries", 1, "edge: dial+settle attempts; transient faults back off exponentially")
	)
	flag.Parse()

	var spec *faults.Spec
	if *faultStr != "" {
		s, err := faults.Parse(*faultStr)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		s = s.WithDefaults()
		spec = &s
	}

	strat := tlc.Optimal
	switch *strategy {
	case "honest":
		strat = tlc.Honest
	case "random":
		strat = tlc.RandomSelfish
	case "optimal":
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	var keys *tlc.KeyPair
	var err error
	if *keyPath != "" {
		keys, err = tlc.LoadKeyPair(*keyPath)
	} else {
		keys, err = tlc.GenerateKeyPair()
	}
	if err != nil {
		log.Fatal(err)
	}
	end := time.Now().Truncate(time.Hour)
	plan := tlc.Plan{Start: end.Add(-*cycleDur), End: end, C: *c}
	usage := tlc.Usage{Sent: *sent, Received: *received}

	switch *role {
	case "operator":
		runOperator(*listen, plan, keys, usage, strat, *proofOut, *once, spec, *faultSd)
	case "edge":
		if *connect == "" {
			log.Fatal("edge role requires -connect")
		}
		runEdge(*connect, plan, keys, usage, strat, *proofOut, spec, *faultSd, *retries)
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// wrapFaults interposes the seeded fault-injecting stream when the
// spec carries stream faults; otherwise the connection passes through
// untouched.
func wrapFaults(conn net.Conn, spec *faults.Spec, seed int64) (io.ReadWriter, *faults.Trace) {
	if spec == nil || !spec.StreamActive() {
		return conn, nil
	}
	tr := &faults.Trace{}
	return &faults.Conn{
		Inner: conn, Spec: *spec, RNG: sim.NewRNG(seed), Trace: tr,
		Stall: time.Sleep,
	}, tr
}

// exchangeKeys swaps PKIX-encoded public keys over the connection:
// each side writes its key as one frame and reads the peer's.
func exchangeKeys(conn io.ReadWriter, own *rsa.PublicKey) (*rsa.PublicKey, error) {
	der, err := x509.MarshalPKIXPublicKey(own)
	if err != nil {
		return nil, err
	}
	if err := protocol.WriteFrame(conn, der); err != nil {
		return nil, err
	}
	peerDER, err := protocol.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	pub, err := x509.ParsePKIXPublicKey(peerDER)
	if err != nil {
		return nil, err
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("peer key is not RSA")
	}
	return rsaPub, nil
}

func settle(conn io.ReadWriter, role tlc.Role, plan tlc.Plan, keys *tlc.KeyPair,
	usage tlc.Usage, strat tlc.Strategy, initiate bool, proofOut string) error {
	peerKey, err := exchangeKeys(conn, keys.Public())
	if err != nil {
		return fmt.Errorf("key exchange: %w", err)
	}
	n := tlc.NewNegotiator(role, plan, keys, peerKey, usage, strat)
	receipt, err := n.Negotiate(conn, initiate)
	if err != nil {
		return fmt.Errorf("negotiate: %w", err)
	}
	log.Printf("settled: %d bytes in %d round(s); proof %d bytes",
		receipt.X, receipt.Rounds, len(receipt.Proof))
	if proofOut != "" {
		if err := os.WriteFile(proofOut, receipt.Proof, 0o644); err != nil {
			return err
		}
		log.Printf("proof written to %s", proofOut)
	}
	return nil
}

func runOperator(addr string, plan tlc.Plan, keys *tlc.KeyPair, usage tlc.Usage,
	strat tlc.Strategy, proofOut string, once bool, spec *faults.Spec, faultSeed int64) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close() //tlcvet:allow errdiscard — process is exiting; nothing to do on listener-close failure
	log.Printf("operator listening on %s (plan c=%.2f cycle=[%s, %s))",
		ln.Addr(), plan.C, plan.Start.Format(time.RFC3339), plan.End.Format(time.RFC3339))
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		func() {
			defer conn.Close() //tlcvet:allow errdiscard — negotiation already settled or failed; close is cleanup
			if err := conn.SetDeadline(time.Now().Add(time.Minute)); err != nil {
				log.Printf("set deadline for %s: %v", conn.RemoteAddr(), err)
				return
			}
			rw, tr := wrapFaults(conn, spec, faultSeed)
			if err := settle(rw, tlc.Operator, plan, keys, usage, strat, true, proofOut); err != nil {
				log.Printf("negotiation with %s failed: %v", conn.RemoteAddr(), err)
			}
			if tr != nil {
				log.Printf("fault injection: %s", tr.Summary())
			}
		}()
		if once {
			return
		}
	}
}

func runEdge(addr string, plan tlc.Plan, keys *tlc.KeyPair, usage tlc.Usage,
	strat tlc.Strategy, proofOut string, spec *faults.Spec, faultSeed int64, retries int) {
	start := time.Now()
	r := &protocol.Retrier{
		MaxAttempts: retries,
		Sleep:       time.Sleep,
		Elapsed:     func() time.Duration { return time.Since(start) },
	}
	attempts := 0
	err := r.Do(func(attempt int) error {
		attempts++
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return err
		}
		defer conn.Close() //tlcvet:allow errdiscard — negotiation already settled or failed; close is cleanup
		if err := conn.SetDeadline(time.Now().Add(time.Minute)); err != nil {
			return err
		}
		// A fresh fault stream per attempt, seeded off the attempt
		// index so replays of the whole retry sequence are identical.
		rw, tr := wrapFaults(conn, spec, faultSeed+int64(attempt))
		serr := settle(rw, tlc.Edge, plan, keys, usage, strat, false, proofOut)
		if tr != nil {
			log.Printf("attempt %d fault injection: %s", attempt+1, tr.Summary())
		}
		return serr
	})
	if err != nil {
		log.Fatalf("after %d attempt(s): %v", attempts, err)
	}
}
