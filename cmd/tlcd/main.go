// Command tlcd runs one side of a TLC charging negotiation over TCP:
// an operator endpoint that serves negotiations, or an edge client
// that settles a cycle against it. It demonstrates the protocol on a
// real network; keys are generated on startup and exchanged over a
// preliminary frame (a production deployment would provision them out
// of band, §5.3.1).
//
// Usage:
//
//	tlcd -role operator -listen :7075 -sent 1000000 -received 930000
//	tlcd -role edge -connect localhost:7075 -sent 1000000 -received 930000 \
//	     -proof-out cycle.poc
package main

import (
	"crypto/rsa"
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"tlc"
	"tlc/internal/protocol"
)

func main() {
	var (
		role     = flag.String("role", "operator", "operator or edge")
		listen   = flag.String("listen", ":7075", "operator listen address")
		connect  = flag.String("connect", "", "edge: operator address to dial")
		sent     = flag.Uint64("sent", 0, "usage view: bytes the edge sent")
		received = flag.Uint64("received", 0, "usage view: bytes the edge received")
		c        = flag.Float64("c", 0.5, "lost-data charging weight")
		cycleDur = flag.Duration("cycle-dur", time.Hour, "charging cycle duration")
		strategy = flag.String("strategy", "optimal", "honest, optimal or random")
		keyPath  = flag.String("key", "", "own private key PEM (from tlckeys); generated if empty")
		proofOut = flag.String("proof-out", "", "write the settled proof here")
		once     = flag.Bool("once", true, "operator: exit after one negotiation")
	)
	flag.Parse()

	strat := tlc.Optimal
	switch *strategy {
	case "honest":
		strat = tlc.Honest
	case "random":
		strat = tlc.RandomSelfish
	case "optimal":
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	var keys *tlc.KeyPair
	var err error
	if *keyPath != "" {
		keys, err = tlc.LoadKeyPair(*keyPath)
	} else {
		keys, err = tlc.GenerateKeyPair()
	}
	if err != nil {
		log.Fatal(err)
	}
	end := time.Now().Truncate(time.Hour)
	plan := tlc.Plan{Start: end.Add(-*cycleDur), End: end, C: *c}
	usage := tlc.Usage{Sent: *sent, Received: *received}

	switch *role {
	case "operator":
		runOperator(*listen, plan, keys, usage, strat, *proofOut, *once)
	case "edge":
		if *connect == "" {
			log.Fatal("edge role requires -connect")
		}
		runEdge(*connect, plan, keys, usage, strat, *proofOut)
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// exchangeKeys swaps PKIX-encoded public keys over the connection:
// each side writes its key as one frame and reads the peer's.
func exchangeKeys(conn net.Conn, own *rsa.PublicKey) (*rsa.PublicKey, error) {
	der, err := x509.MarshalPKIXPublicKey(own)
	if err != nil {
		return nil, err
	}
	if err := protocol.WriteFrame(conn, der); err != nil {
		return nil, err
	}
	peerDER, err := protocol.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	pub, err := x509.ParsePKIXPublicKey(peerDER)
	if err != nil {
		return nil, err
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("peer key is not RSA")
	}
	return rsaPub, nil
}

func settle(conn net.Conn, role tlc.Role, plan tlc.Plan, keys *tlc.KeyPair,
	usage tlc.Usage, strat tlc.Strategy, initiate bool, proofOut string) error {
	peerKey, err := exchangeKeys(conn, keys.Public())
	if err != nil {
		return fmt.Errorf("key exchange: %w", err)
	}
	n := tlc.NewNegotiator(role, plan, keys, peerKey, usage, strat)
	receipt, err := n.Negotiate(conn, initiate)
	if err != nil {
		return fmt.Errorf("negotiate: %w", err)
	}
	log.Printf("settled: %d bytes in %d round(s); proof %d bytes",
		receipt.X, receipt.Rounds, len(receipt.Proof))
	if proofOut != "" {
		if err := os.WriteFile(proofOut, receipt.Proof, 0o644); err != nil {
			return err
		}
		log.Printf("proof written to %s", proofOut)
	}
	return nil
}

func runOperator(addr string, plan tlc.Plan, keys *tlc.KeyPair, usage tlc.Usage,
	strat tlc.Strategy, proofOut string, once bool) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close() //tlcvet:allow errdiscard — process is exiting; nothing to do on listener-close failure
	log.Printf("operator listening on %s (plan c=%.2f cycle=[%s, %s))",
		ln.Addr(), plan.C, plan.Start.Format(time.RFC3339), plan.End.Format(time.RFC3339))
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		func() {
			defer conn.Close() //tlcvet:allow errdiscard — negotiation already settled or failed; close is cleanup
			if err := conn.SetDeadline(time.Now().Add(time.Minute)); err != nil {
				log.Printf("set deadline for %s: %v", conn.RemoteAddr(), err)
				return
			}
			if err := settle(conn, tlc.Operator, plan, keys, usage, strat, true, proofOut); err != nil {
				log.Printf("negotiation with %s failed: %v", conn.RemoteAddr(), err)
			}
		}()
		if once {
			return
		}
	}
}

func runEdge(addr string, plan tlc.Plan, keys *tlc.KeyPair, usage tlc.Usage,
	strat tlc.Strategy, proofOut string) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close() //tlcvet:allow errdiscard — negotiation already settled or failed; close is cleanup
	if err := conn.SetDeadline(time.Now().Add(time.Minute)); err != nil {
		log.Fatalf("set deadline: %v", err)
	}
	if err := settle(conn, tlc.Edge, plan, keys, usage, strat, false, proofOut); err != nil {
		log.Fatal(err)
	}
}
