package main

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"tlc"
	"tlc/internal/core"
	"tlc/internal/ledger"
	"tlc/internal/metrics"
	"tlc/internal/poc"
	"tlc/internal/session"
)

// testParties generates a key pair per side and a shared plan/usage
// view, mirroring the CLI defaults the root e2e test drives.
func testParties(t *testing.T) (opKeys, edgeKeys *tlc.KeyPair, plan tlc.Plan, usage tlc.Usage) {
	t.Helper()
	var err error
	opKeys, err = tlc.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	edgeKeys, err = tlc.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	end := time.Now().Truncate(time.Hour)
	plan = tlc.Plan{Start: end.Add(-time.Hour), End: end, C: 0.5}
	usage = tlc.Usage{Sent: 1_000_000, Received: 930_000}
	return opKeys, edgeKeys, plan, usage
}

// startOperator binds fresh loopback listeners and runs the operator
// on them, returning the negotiation and debug addresses plus the
// serveWith exit channel.
func startOperator(t *testing.T, op *operator, withDebug bool) (addr, debugAddr string, exited chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var debugLn net.Listener
	if withDebug {
		debugLn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		debugAddr = debugLn.Addr().String()
	}
	exited = make(chan error, 1)
	go func() { exited <- op.serveWith(ln, debugLn) }()
	return ln.Addr().String(), debugAddr, exited
}

func edgeSettle(t *testing.T, addr string, keys *tlc.KeyPair, plan tlc.Plan, usage tlc.Usage) error {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return settle(conn, tlc.Edge, plan, keys, usage, tlc.Honest, false, "", true, nil, nil)
}

func scrapeMetric(t *testing.T, debugAddr, series string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", debugAddr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestOperatorConcurrentConnsAndScrape is the regression test for the
// serial-accept bug plus the live observability surface: a client
// that connects and then goes silent must not block a second client
// from settling, and the settlement must be visible through a real
// HTTP scrape of /metrics.
func TestOperatorConcurrentConnsAndScrape(t *testing.T) {
	opKeys, edgeKeys, plan, usage := testParties(t)
	op := &operator{
		plan: plan, keys: opKeys, usage: usage, strat: tlc.Honest,
		once: false, maxConns: 4,
		connTimeout: 30 * time.Second, drainTimeout: 5 * time.Second,
		stop: make(chan struct{}),
	}
	addr, debugAddr, exited := startOperator(t, op, true)

	// The stalling client: dials first, writes nothing. Under the old
	// serial accept loop this connection would own the listener for
	// its full deadline and the edge below could never settle.
	stalled, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test

	before := metrics.Default.Snapshot()["protocol_negotiations_settled_total"]
	if err := edgeSettle(t, addr, edgeKeys, plan, usage); err != nil {
		t.Fatalf("edge settle with a stalled peer in flight: %v", err)
	}

	after, ok := scrapeMetric(t, debugAddr, "protocol_negotiations_settled_total")
	if !ok {
		t.Fatal("protocol_negotiations_settled_total missing from /metrics")
	}
	if after < before+1 {
		t.Fatalf("settled counter did not advance: before=%v after=%v", before, after)
	}
	if v, ok := scrapeMetric(t, debugAddr, "protocol_negotiate_seconds_count"); !ok || v < 1 {
		t.Fatalf("negotiate latency histogram not observed: ok=%v v=%v", ok, v)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", debugAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/healthz content type %q", ct)
	}

	// Release the stalled peer so drain completes promptly, then stop.
	if err := stalled.Close(); err != nil {
		t.Fatal(err)
	}
	close(op.stop)
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("operator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("operator did not drain and exit")
	}
}

// TestOperatorOnceExits: with once set, serving a single negotiation
// ends the operator cleanly — the mode the root CLI e2e test relies
// on.
func TestOperatorOnceExits(t *testing.T) {
	opKeys, edgeKeys, plan, usage := testParties(t)
	op := &operator{
		plan: plan, keys: opKeys, usage: usage, strat: tlc.Honest,
		once: true, maxConns: 4,
		connTimeout: 30 * time.Second, drainTimeout: 5 * time.Second,
	}
	addr, _, exited := startOperator(t, op, false)
	if err := edgeSettle(t, addr, edgeKeys, plan, usage); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("operator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("once-operator did not exit after first negotiation")
	}
}

// TestOperatorMuxAndLegacyCoexist drives both connection flavours at
// one operator listener: a legacy single-session conn (bare key frame)
// and multiplexed TLCMUX1 conns carrying many sessions each. The
// first-frame sniff in serve must route both correctly.
func TestOperatorMuxAndLegacyCoexist(t *testing.T) {
	opKeys, edgeKeys, plan, usage := testParties(t)
	op := &operator{
		plan: plan, keys: opKeys, usage: usage, strat: tlc.Optimal,
		once: false, maxConns: 4,
		connTimeout: 30 * time.Second, drainTimeout: 5 * time.Second,
		muxTimeout: 2 * time.Minute,
		stop:       make(chan struct{}),
	}
	eng, err := session.NewEngine(session.EngineConfig{
		Config: session.Config{
			Role:     poc.RoleOperator,
			Plan:     poc.Plan{TStart: plan.Start.UnixNano(), TEnd: plan.End.UnixNano(), C: plan.C},
			Key:      opKeys.Signer(),
			Strategy: core.OptimalStrategy{},
			View:     core.View{Sent: float64(usage.Sent), Received: float64(usage.Received)},
		},
		Shards: 2, Workers: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	op.engine = eng
	addr, _, exited := startOperator(t, op, false)

	// Legacy conn first: the sniff must fall through to settle.
	if err := edgeSettle(t, addr, edgeKeys, plan, usage); err != nil {
		t.Fatalf("legacy settle against mux-enabled operator: %v", err)
	}

	const sessions = 40
	conns := make([]io.ReadWriter, 2)
	for i := range conns {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
		if err := c.SetDeadline(time.Now().Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	res, err := session.RunClient(session.ClientConfig{
		Config: session.Config{
			Role:     poc.RoleEdge,
			Plan:     poc.Plan{TStart: plan.Start.UnixNano(), TEnd: plan.End.UnixNano(), C: plan.C},
			Key:      edgeKeys.Signer(),
			Strategy: core.OptimalStrategy{},
			View:     core.View{Sent: float64(usage.Sent), Received: float64(usage.Received)},
		},
		Sessions: sessions,
		Conns:    conns,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Settled != sessions || res.Rejected != 0 || res.Failed != 0 {
		t.Fatalf("mux settled/rejected/failed = %d/%d/%d, want %d/0/0",
			res.Settled, res.Rejected, res.Failed, sessions)
	}

	close(op.stop)
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("operator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("operator did not drain and exit")
	}
}

// TestOperatorLedgerAudit is the end-to-end durability path: an
// operator with a real on-disk ledger records settlements from both
// connection flavours (mux sessions through the engine Recorder,
// a legacy conn through the settle callback), the shutdown flush
// closes the ledger, and the -audit query path reads the proofs back
// from the directory.
func TestOperatorLedgerAudit(t *testing.T) {
	opKeys, edgeKeys, plan, usage := testParties(t)
	dir := t.TempDir()
	led, err := ledger.Open(ledger.Options{Dir: dir, FS: ledger.DirFS{}, SyncEvery: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cycle := uint64(plan.Start.Unix())
	op := &operator{
		plan: plan, keys: opKeys, usage: usage, strat: tlc.Optimal,
		once: false, maxConns: 4,
		connTimeout: 30 * time.Second, drainTimeout: 5 * time.Second,
		muxTimeout: 2 * time.Minute,
		stop:       make(chan struct{}),
	}
	op.led, op.cycle = led, cycle
	eng, err := session.NewEngine(session.EngineConfig{
		Config: session.Config{
			Role:     poc.RoleOperator,
			Plan:     poc.Plan{TStart: plan.Start.UnixNano(), TEnd: plan.End.UnixNano(), C: plan.C},
			Key:      opKeys.Signer(),
			Strategy: core.OptimalStrategy{},
			View:     core.View{Sent: float64(usage.Sent), Received: float64(usage.Received)},
		},
		Shards: 2, Workers: 2, Seed: 42,
		Recorder: op.recorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	op.engine = eng
	addr, _, exited := startOperator(t, op, false)

	// One legacy settlement plus a batch of mux sessions.
	if err := edgeSettle(t, addr, edgeKeys, plan, usage); err != nil {
		t.Fatalf("legacy settle: %v", err)
	}
	const sessions = 25
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	if err := c.SetDeadline(time.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	res, err := session.RunClient(session.ClientConfig{
		Config: session.Config{
			Role:     poc.RoleEdge,
			Plan:     poc.Plan{TStart: plan.Start.UnixNano(), TEnd: plan.End.UnixNano(), C: plan.C},
			Key:      edgeKeys.Signer(),
			Strategy: core.OptimalStrategy{},
			View:     core.View{Sent: float64(usage.Sent), Received: float64(usage.Received)},
		},
		Sessions: sessions,
		Conns:    []io.ReadWriter{c},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Settled != sessions {
		t.Fatalf("mux settled = %d, want %d", res.Settled, sessions)
	}

	// Shutdown flushes the group-commit tail and closes the ledger.
	close(op.stop)
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("operator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("operator did not drain and exit")
	}
	if n := op.ledgerErrs.Load(); n != 0 {
		t.Fatalf("%d ledger appends failed", n)
	}

	// Audit the closed directory the way the CLI does; the subscriber
	// id is the edge key's PKIX fingerprint.
	pkixDER, err := x509.MarshalPKIXPublicKey(edgeKeys.Public())
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(pkixDER)
	fp := hex.EncodeToString(sum[:])

	rep, err := ledger.Audit(ledger.DirFS{}, dir, fp, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.PoCs); got != sessions+1 {
		t.Fatalf("audit found %d PoCs, want %d (mux + legacy)", got, sessions+1)
	}
	for i := range rep.PoCs {
		rec := &rep.PoCs[i]
		var proof poc.PoC
		if err := proof.UnmarshalBinary(rec.Proof); err != nil {
			t.Fatalf("poc[%d] does not decode: %v", i, err)
		}
		if err := poc.VerifyStateless(&proof,
			poc.Plan{TStart: plan.Start.UnixNano(), TEnd: plan.End.UnixNano(), C: plan.C},
			edgeKeys.Public(), opKeys.Public()); err != nil {
			t.Fatalf("poc[%d] from the audited ledger does not verify: %v", i, err)
		}
		if proof.X != rec.X {
			t.Fatalf("poc[%d] record X=%d but proof X=%d", i, rec.X, proof.X)
		}
	}

	// The CLI text path renders the same report.
	var out strings.Builder
	if err := runAudit(&out, dir, fmt.Sprintf("subscriber=%s,cycle=%d", fp, cycle)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("%d PoC(s)", sessions+1)) {
		t.Fatalf("audit output missing PoC count:\n%s", out.String())
	}

	// Bad queries fail loudly.
	if err := runAudit(io.Discard, dir, "cycle=zap"); err == nil {
		t.Fatal("malformed -audit query accepted")
	}
	if err := runAudit(io.Discard, dir, "subscriber=x"); err == nil {
		t.Fatal("-audit without cycle accepted")
	}
	// A mistyped -ledger-dir names the path instead of pretending the
	// ledger is merely empty.
	err = runAudit(io.Discard, dir+"-no-such", "subscriber=x,cycle=1")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("missing -ledger-dir: err = %v, want a does-not-exist diagnosis", err)
	}
}

// TestOperatorStopWithoutTraffic: the shutdown trigger alone (the
// test stand-in for SIGTERM) must stop an idle operator promptly.
func TestOperatorStopWithoutTraffic(t *testing.T) {
	opKeys, _, plan, usage := testParties(t)
	op := &operator{
		plan: plan, keys: opKeys, usage: usage, strat: tlc.Honest,
		once: false, maxConns: 4,
		connTimeout: time.Second, drainTimeout: time.Second,
		stop: make(chan struct{}),
	}
	_, _, exited := startOperator(t, op, false)
	close(op.stop)
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("operator exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle operator did not exit on stop")
	}
}
