// Command tlckeys generates the RSA key pair of §5.3.1 and writes it
// as PEM files: <name>.key (PKCS#8 private, mode 0600) and <name>.pub
// (PKIX public, mode 0644). The public half is what a party publishes
// to its peer and to verifiers.
//
// Usage:
//
//	tlckeys -out edge          # writes edge.key and edge.pub
//	tlckeys -out operator -bits 2048
package main

import (
	"flag"
	"fmt"
	"log"

	"tlc/internal/keyio"
	"tlc/internal/poc"
)

func main() {
	var (
		out  = flag.String("out", "tlc", "output file prefix")
		bits = flag.Int("bits", poc.DefaultKeyBits, "RSA modulus bits")
	)
	flag.Parse()

	kp, err := poc.GenerateKeyPair(*bits, nil)
	if err != nil {
		log.Fatalf("tlckeys: %v", err)
	}
	privPath, pubPath := *out+".key", *out+".pub"
	if err := keyio.SavePrivateKey(privPath, kp.Private); err != nil {
		log.Fatalf("tlckeys: %v", err)
	}
	if err := keyio.SavePublicKey(pubPath, kp.Public); err != nil {
		log.Fatalf("tlckeys: %v", err)
	}
	fmt.Printf("wrote %s (private, keep secret) and %s (public, RSA-%d)\n", privPath, pubPath, *bits)
}
