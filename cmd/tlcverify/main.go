// Command tlcverify is a standalone public verifier (Algorithm 2): it
// checks serialized Proof-of-Charging files against a published data
// plan and the two parties' public keys, as an FCC/court/MVNO auditor
// would (§5.3.4).
//
// Usage:
//
//	tlcverify -edge-key edge.pub -operator-key op.pub \
//	          -cycle-start 2019-01-07T07:13:46Z -cycle-dur 1h -c 0.5 \
//	          proof1.poc proof2.poc ...
//
// Keys are PKIX PEM public keys. Exit status 0 means every proof
// verified.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tlc"
	"tlc/internal/keyio"
)

func main() {
	var (
		edgePath   = flag.String("edge-key", "", "edge vendor public key (PEM)")
		opPath     = flag.String("operator-key", "", "operator public key (PEM)")
		cycleStart = flag.String("cycle-start", "", "cycle start (RFC 3339)")
		cycleDur   = flag.Duration("cycle-dur", time.Hour, "cycle duration")
		c          = flag.Float64("c", 0.5, "lost-data charging weight")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tlcverify: "+format+"\n", args...)
		os.Exit(2)
	}

	if *edgePath == "" || *opPath == "" || *cycleStart == "" {
		fail("-edge-key, -operator-key and -cycle-start are required")
	}
	edgeKey, err := keyio.LoadPublicKey(*edgePath)
	if err != nil {
		fail("edge key: %v", err)
	}
	opKey, err := keyio.LoadPublicKey(*opPath)
	if err != nil {
		fail("operator key: %v", err)
	}
	start, err := time.Parse(time.RFC3339, *cycleStart)
	if err != nil {
		fail("cycle-start: %v", err)
	}
	plan := tlc.Plan{Start: start, End: start.Add(*cycleDur), C: *c}
	if err := plan.Validate(); err != nil {
		fail("%v", err)
	}

	verifier := tlc.NewVerifier(edgeKey, opKey)
	bad := 0
	for _, path := range flag.Args() {
		proof, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("%s: READ ERROR: %v\n", path, err)
			bad++
			continue
		}
		if err := verifier.Verify(proof, plan); err != nil {
			fmt.Printf("%s: INVALID: %v\n", path, err)
			bad++
			continue
		}
		vol, _ := tlc.ProofVolume(proof)
		fmt.Printf("%s: OK (settled %d bytes)\n", path, vol)
	}
	if bad > 0 {
		os.Exit(1)
	}
}
