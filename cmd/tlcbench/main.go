// Command tlcbench regenerates the paper's evaluation tables and
// figures on the emulated testbed.
//
// Usage:
//
//	tlcbench -experiment all
//	tlcbench -experiment fig12 -duration 60s -seeds 3
//	tlcbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tlc/internal/experiment"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id or 'all'")
		duration = flag.Duration("duration", 60*time.Second, "charging cycle length per run")
		seeds    = flag.Int("seeds", 3, "repetitions per grid point")
		quick    = flag.Bool("quick", false, "small configuration for smoke runs")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiment.IDs, "\n"))
		return
	}

	opt := experiment.Options{Duration: *duration, Seeds: *seeds}
	if *quick {
		opt = experiment.Quick()
	}

	run := func(id string) {
		f, ok := experiment.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "tlcbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := f(opt)
		fmt.Printf("== %s — %s ==\n%s(elapsed %v)\n\n", res.ID, res.Title, res.Text, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range experiment.IDs {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
