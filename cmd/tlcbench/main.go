// Command tlcbench regenerates the paper's evaluation tables and
// figures on the emulated testbed.
//
// Usage:
//
//	tlcbench -experiment all
//	tlcbench -experiment fig12 -duration 60s -seeds 3
//	tlcbench -experiment fig12,table2 -workers -1 -json bench.json
//	tlcbench -experiment table2 -cpuprofile cpu.pprof
//	tlcbench -experiment faults -duration 30s -seeds 3
//	tlcbench -experiment city -shards 0,2,4 -json BENCH_city.json
//	tlcbench -list
//
// The "faults" experiment is the deterministic fault-injection sweep
// (internal/faults): charging-gap metrics across fault intensity
// levels plus the byzantine negotiation battery, whose
// byz_forged_verified metric must always be zero.
//
// -workers fans each experiment's independent testbed cells across a
// worker pool (0 sequential, -1 one per CPU); the regenerated output
// is byte-identical at every setting. -shards applies to the sharded
// "city" experiment: it runs once per listed shard worker count (0 =
// the sequential golden path), with byte-identical metrics at every
// count — only the per-shard events_fired/stall_ms execution report
// changes. A shard count above the city's eNodeB count is an error
// (exit 2), never a silent clamp. -json writes a machine-readable
// report (per-experiment wall time, worker count and domain metrics)
// to the given path, or to stdout when the path is "-", establishing
// the BENCH_*.json perf trajectory tracked in the repo.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tlc/internal/experiment"
	"tlc/internal/metrics"
)

// jsonReport is the -json document.
type jsonReport struct {
	// GoMaxProcs, Workers and Shards record the parallelism the run
	// used: sweep workers for the cell sweeps, shard worker counts
	// for the sharded city simulation.
	GoMaxProcs int   `json:"gomaxprocs"`
	Workers    int   `json:"workers"`
	Shards     []int `json:"shards"`
	// Note is a free-form host annotation (e.g. "single-core CI: no
	// shard speedup expected").
	Note string `json:"note,omitempty"`
	// DurationSec and Seeds echo the sweep size.
	DurationSec float64          `json:"duration_sec"`
	Seeds       int              `json:"seeds"`
	Experiments []jsonExperiment `json:"experiments"`
	TotalMS     float64          `json:"total_ms"`
	// Registry is the process-wide metrics snapshot taken after every
	// experiment has published its run counters — the same series the
	// live tlcd exposes on /metrics, so bench numbers and scraped
	// numbers share one source of truth.
	Registry map[string]float64 `json:"registry,omitempty"`
}

// jsonExperiment is one experiment's entry.
type jsonExperiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	// EventsFired is the number of simulator events the experiment's
	// testbed cycles executed; EventsPerSec is that count over the
	// wall time, the event engine's throughput gauge.
	EventsFired  uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvent is the heap allocations (runtime.MemStats
	// Mallocs delta, all sources included) per simulator event — the
	// steady-state target is well under one.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Metrics are the experiment's domain numbers (gap ratios, ε
	// means, negotiation rounds, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Shards and ShardStats appear on sharded experiments (city):
	// the shard worker count this entry ran at (0 = sequential golden
	// path, hence the pointer), and the per-worker events_fired /
	// stall_ms execution report.
	Shards     *int                   `json:"shards,omitempty"`
	ShardStats []experiment.ShardStat `json:"shard_stats,omitempty"`
}

func main() {
	var (
		exp        = flag.String("experiment", "all", "experiment id, comma list, or 'all'")
		duration   = flag.Duration("duration", 60*time.Second, "charging cycle length per run")
		seeds      = flag.Int("seeds", 3, "repetitions per grid point")
		workers    = flag.Int("workers", 0, "sweep worker pool: 0 sequential, -1 one per CPU, n>0 exactly n")
		shards     = flag.String("shards", "0", "comma list of shard worker counts for the sharded city experiment (0 = sequential golden path); city runs once per value")
		note       = flag.String("note", "", "free-form host annotation recorded in the JSON report")
		quick      = flag.Bool("quick", false, "small configuration for smoke runs")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath   = flag.String("json", "", "write a JSON report to this path ('-' for stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiment.IDs, "\n"))
		return
	}
	if *flagLGCheck != "" {
		lgCheck(*flagLGCheck)
		return
	}
	if *flagLoadgen || *flagLGSmoke {
		runLoadgen()
		return
	}
	if *flagLedgerCheck != "" {
		ledgerCheck(*flagLedgerCheck)
		return
	}
	if *flagLedgerBench {
		runLedgerBench()
		return
	}

	opt := experiment.Options{Duration: *duration, Seeds: *seeds}
	if *quick {
		opt = experiment.Quick()
	}
	opt.Workers = *workers

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("create %s: %v", *cpuProfile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", *cpuProfile, err)
			}
		}()
	}

	ids := experiment.IDs
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	shardCounts := parseShards(*shards)

	// Expand the run list: the sharded city experiment runs once per
	// requested shard count; everything else runs once. Shard counts
	// are validated up front against the city the options will build —
	// over-asking is a hard error, never a silent clamp.
	type runSpec struct {
		id      string
		shards  int
		sharded bool
	}
	var specs []runSpec
	for _, id := range ids {
		if id != "city" {
			specs = append(specs, runSpec{id: id})
			continue
		}
		enbs, _ := experiment.CityScale(opt)
		for _, sc := range shardCounts {
			if sc > enbs {
				fatalf("-shards %d exceeds the city's %d eNodeBs (refusing to clamp; shrink -shards or lengthen -duration)", sc, enbs)
			}
			specs = append(specs, runSpec{id: id, shards: sc, sharded: true})
		}
	}

	report := jsonReport{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     *workers,
		Shards:      shardCounts,
		Note:        *note,
		DurationSec: opt.Duration.Seconds(),
		Seeds:       opt.Seeds,
	}
	quiet := *jsonPath == "-"
	var emptyMetrics []string
	var ms runtime.MemStats
	for _, spec := range specs {
		f, ok := experiment.ByID(spec.id)
		if !ok {
			fatalf("unknown experiment %q (use -list)", spec.id)
		}
		o := opt
		o.Shards = spec.shards
		runtime.ReadMemStats(&ms)
		allocsBefore := ms.Mallocs
		eventsBefore := experiment.EventsFired()
		start := time.Now()
		res := f(o)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		events := experiment.EventsFired() - eventsBefore
		allocs := ms.Mallocs - allocsBefore
		if !quiet {
			label := res.ID
			if spec.sharded {
				label = fmt.Sprintf("%s (shards=%d)", res.ID, spec.shards)
			}
			fmt.Printf("== %s — %s ==\n%s(elapsed %v)\n\n", label, res.Title, res.Text, wall.Round(time.Millisecond))
		}
		if len(res.Metrics) == 0 {
			emptyMetrics = append(emptyMetrics, spec.id)
		}
		entry := jsonExperiment{
			ID: res.ID, Title: res.Title,
			WallMS:      float64(wall.Microseconds()) / 1e3,
			EventsFired: events,
			Metrics:     res.Metrics,
		}
		if spec.sharded {
			sc := spec.shards
			entry.Shards = &sc
			entry.ShardStats = res.Shards
		}
		if secs := wall.Seconds(); secs > 0 {
			entry.EventsPerSec = float64(events) / secs
		}
		if events > 0 {
			entry.AllocsPerEvent = float64(allocs) / float64(events)
		}
		report.Experiments = append(report.Experiments, entry)
		report.TotalMS += float64(wall.Microseconds()) / 1e3
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("create %s: %v", *memProfile, err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("write heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", *memProfile, err)
		}
	}

	report.Registry = metrics.Default.Snapshot()

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("marshal report: %v", err)
		}
		data = append(data, '\n')
		if quiet {
			if _, err := os.Stdout.Write(data); err != nil {
				fatalf("write report: %v", err)
			}
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatalf("write %s: %v", *jsonPath, err)
		}
	}

	// An experiment with no machine-readable metrics is a regression
	// in itself: the perf trajectory (BENCH_*.json) loses its domain
	// cross-check. Fail loudly rather than silently emitting holes.
	if len(emptyMetrics) > 0 {
		fatalf("experiments with empty metrics: %s", strings.Join(emptyMetrics, ", "))
	}
}

// parseShards parses the -shards comma list. Negative counts are
// rejected here; counts above the city's eNodeB total are rejected in
// main once the scenario size is known.
func parseShards(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fatalf("-shards: %q is not an integer", part)
		}
		if n < 0 {
			fatalf("-shards: negative shard count %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fatalf("-shards: empty list")
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tlcbench: "+format+"\n", args...)
	os.Exit(2)
}
