// Settlement-ledger micro-bench: CDR appends/sec through the real
// on-disk (DirFS, fsync) path at group-commit windows {1, 16, 256},
// archived as BENCH_ledger.json. The window sweep is the durability
// cost curve: sync1 pays one fsync per record, sync256 amortizes it
// across the batch.
//
//	tlcbench -ledger-bench -ledger-json BENCH_ledger.json
//	tlcbench -ledger-check BENCH_ledger.json   # schema + invariant check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tlc/internal/ledger"
)

var (
	flagLedgerBench   = flag.Bool("ledger-bench", false, "run the settlement-ledger append micro-bench instead of experiments")
	flagLedgerAppends = flag.Int("ledger-appends", 4096, "ledger-bench: records appended per group-commit setting")
	flagLedgerJSON    = flag.String("ledger-json", "", "ledger-bench: write the JSON report here ('-' for stdout)")
	flagLedgerCheck   = flag.String("ledger-check", "", "validate a ledger-bench report (3 sync settings, positive rates, batching not slower) and exit")
)

// ledgerSyncSettings is the fixed group-commit sweep; -ledger-check
// requires exactly these.
var ledgerSyncSettings = []int{1, 16, 256}

// ledgerBenchReport is the -ledger-bench JSON document checked in as
// BENCH_ledger.json.
type ledgerBenchReport struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Note       string             `json:"note,omitempty"`
	Entries    []ledgerBenchEntry `json:"entries"`
	TotalSec   float64            `json:"total_sec"`
}

// ledgerBenchEntry is one group-commit setting's outcome.
type ledgerBenchEntry struct {
	SyncEvery     int     `json:"sync_every"`
	Appends       int     `json:"appends"`
	WallSec       float64 `json:"wall_sec"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	// ReplayedOK confirms the directory replayed to exactly Appends
	// records after Close — a throughput number from a ledger that
	// loses records would be meaningless.
	ReplayedOK bool `json:"replayed_ok"`
}

// ledgerBenchOne appends n CDR records at the given group-commit
// window into a fresh on-disk ledger, closes it, and verifies the
// replay count.
func ledgerBenchOne(syncEvery, n int) (ledgerBenchEntry, error) {
	entry := ledgerBenchEntry{SyncEvery: syncEvery, Appends: n}
	dir, err := os.MkdirTemp("", "tlc-ledger-bench")
	if err != nil {
		return entry, err
	}
	defer os.RemoveAll(dir) //tlcvet:allow errdiscard — temp-dir cleanup
	led, err := ledger.Open(ledger.Options{
		Dir: dir, FS: ledger.DirFS{}, SyncEvery: syncEvery,
	}, nil)
	if err != nil {
		return entry, err
	}
	rec := ledger.Record{
		Kind:       ledger.KindCDR,
		Cycle:      1,
		Subscriber: "460-00-1391000000001",
		ChargingID: 7,
		TimeUsage:  1,
		UL:         12_000,
		DL:         48_000,
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		rec.Seq = uint32(i)
		rec.At = int64(i)
		if err := led.Append(&rec); err != nil {
			return entry, fmt.Errorf("append %d: %w", i, err)
		}
	}
	if err := led.Close(); err != nil {
		return entry, err
	}
	entry.WallSec = time.Since(start).Seconds()
	if entry.WallSec > 0 {
		entry.AppendsPerSec = float64(n) / entry.WallSec
	}
	replayed := 0
	err = ledger.Replay(ledger.DirFS{}, dir, func(r *ledger.Record) error {
		replayed++
		return nil
	})
	if err != nil {
		return entry, fmt.Errorf("replay: %w", err)
	}
	if replayed != n {
		return entry, fmt.Errorf("replayed %d of %d appended records", replayed, n)
	}
	entry.ReplayedOK = true
	return entry, nil
}

func runLedgerBench() {
	n := *flagLedgerAppends
	if n <= 0 {
		fatalf("ledger-bench: -ledger-appends must be positive")
	}
	report := ledgerBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note:       "on-disk DirFS append path, single writer",
	}
	suiteStart := time.Now()
	for _, syncEvery := range ledgerSyncSettings {
		entry, err := ledgerBenchOne(syncEvery, n)
		if err != nil {
			fatalf("ledger-bench: sync%d: %v", syncEvery, err)
		}
		fmt.Printf("== ledger sync%-4d %8d appends  %10.0f appends/sec (%.2fs)\n",
			entry.SyncEvery, entry.Appends, entry.AppendsPerSec, entry.WallSec)
		report.Entries = append(report.Entries, entry)
	}
	report.TotalSec = time.Since(suiteStart).Seconds()

	if *flagLedgerJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("ledger-bench: marshal report: %v", err)
		}
		data = append(data, '\n')
		if *flagLedgerJSON == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fatalf("ledger-bench: write report: %v", err)
			}
		} else if err := os.WriteFile(*flagLedgerJSON, data, 0o644); err != nil {
			fatalf("ledger-bench: write %s: %v", *flagLedgerJSON, err)
		}
	}
}

// ledgerCheck validates a checked-in ledger-bench report: all three
// group-commit settings present, every run replayed cleanly at a
// positive rate, and batching at 256 no slower than fsync-per-append
// (a generous 0.9 factor absorbs host noise; the point is that group
// commit must never cost throughput). verify.sh runs it so a stale or
// hand-edited BENCH_ledger.json fails loudly.
func ledgerCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("ledger-check: %v", err)
	}
	var rep ledgerBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("ledger-check: %s: %v", path, err)
	}
	bySync := make(map[int]ledgerBenchEntry, len(rep.Entries))
	for _, e := range rep.Entries {
		if e.Appends <= 0 || e.AppendsPerSec <= 0 {
			fatalf("ledger-check: %s: sync%d malformed (appends=%d rate=%g)",
				path, e.SyncEvery, e.Appends, e.AppendsPerSec)
		}
		if !e.ReplayedOK {
			fatalf("ledger-check: %s: sync%d run did not replay cleanly", path, e.SyncEvery)
		}
		bySync[e.SyncEvery] = e
	}
	if len(rep.Entries) != len(ledgerSyncSettings) {
		fatalf("ledger-check: %s: %d entries, want %d", path, len(rep.Entries), len(ledgerSyncSettings))
	}
	for _, s := range ledgerSyncSettings {
		if _, ok := bySync[s]; !ok {
			fatalf("ledger-check: %s: missing sync%d entry", path, s)
		}
	}
	if r1, r256 := bySync[1].AppendsPerSec, bySync[256].AppendsPerSec; r256 < 0.9*r1 {
		fatalf("ledger-check: %s: sync256 at %.0f appends/sec is slower than sync1 at %.0f — group commit broken",
			path, r256, r1)
	}
	fmt.Printf("ledger-check: %s ok (sync1 %.0f, sync16 %.0f, sync256 %.0f appends/sec)\n",
		path, bySync[1].AppendsPerSec, bySync[16].AppendsPerSec, bySync[256].AppendsPerSec)
}
