// tlcd scale loadgen: drives the internal/session sharded engine (and
// the goroutine-per-conn baseline it replaces) with an in-process TCP
// server, producing BENCH_tlcd_scale.json — sessions/sec, negotiate
// latency quantiles, admission rejections and forged-PoC outcomes at
// several shard/worker settings.
//
//	tlcbench -loadgen -lg-sessions 20000 -lg-peak 100000 -lg-json BENCH_tlcd_scale.json
//	tlcbench -lg-smoke -lg-sessions 2000          # verify.sh stage, run under -race
//	tlcbench -lg-check BENCH_tlcd_scale.json      # schema + invariant check
package main

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tlc/internal/core"
	"tlc/internal/ledger"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/session"
	"tlc/internal/sim"
)

var (
	flagLoadgen    = flag.Bool("loadgen", false, "run the tlcd scale loadgen suite (baseline, mux shard sweep, overload, forged) instead of experiments")
	flagLGSmoke    = flag.Bool("lg-smoke", false, "loadgen smoke: mux runs only, assert zero rejections; the verify.sh -race stage")
	flagLGSessions = flag.Int("lg-sessions", 20000, "loadgen: sessions per rate run")
	flagLGPeak     = flag.Int("lg-peak", 0, "loadgen: extra thundering-herd run holding this many sessions resident at once (0 = skip)")
	flagLGConns    = flag.Int("lg-conns", 8, "loadgen: mux connections carrying the sessions")
	flagLGShards   = flag.String("lg-shards", "1,8", "loadgen: comma list of shard counts for the mux rate runs")
	flagLGWorkers  = flag.Int("lg-workers", 2, "loadgen: engine crypto workers")
	flagLGBaseline = flag.Int("lg-baseline", 0, "loadgen: baseline (conn-per-session) session count; 0 = lg-sessions/4, capped at 5000")
	flagLGJSON     = flag.String("lg-json", "", "loadgen: write the JSON report here ('-' for stdout)")
	flagLGCheck    = flag.String("lg-check", "", "validate a loadgen report (schema + charging/overload invariants) and exit")
	flagLGLedger   = flag.Bool("lg-ledger", false, "loadgen: add mux runs with the durable settlement ledger attached (throughput with durability on vs off)")
)

// lgReport is the -loadgen JSON document checked in as
// BENCH_tlcd_scale.json.
type lgReport struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	Note       string  `json:"note,omitempty"`
	Runs       []lgRun `json:"runs"`
	TotalSec   float64 `json:"total_sec"`
}

// lgRun is one load configuration's outcome.
type lgRun struct {
	Name string `json:"name"`
	// Mode is "baseline" (one conn + goroutine + key exchange per
	// session, the pre-engine tlcd shape) or "mux" (sharded engine).
	Mode     string `json:"mode"`
	Sessions int    `json:"sessions"`
	Conns    int    `json:"conns"`
	Shards   int    `json:"shards,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// MaxSessions/MaxPending are the admission-control settings; the
	// overload run shrinks them below the offered load on purpose.
	MaxSessions int `json:"max_sessions,omitempty"`
	MaxPending  int `json:"max_pending,omitempty"`
	// OpenFirst marks thundering-herd runs: every claim queued before
	// any response is processed, so PeakActive == admitted sessions.
	OpenFirst      bool    `json:"open_first"`
	WallSec        float64 `json:"wall_sec"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Settled        int     `json:"settled"`
	Rejected       int     `json:"rejected"`
	Failed         int     `json:"failed"`
	PeakActive     int64   `json:"peak_active,omitempty"`
	ForgedSent     int     `json:"forged_sent,omitempty"`
	ForgedRejected int     `json:"forged_rejected,omitempty"`
	// ForgedVerified is always emitted: its zero is the charging-
	// integrity invariant -lg-check enforces.
	ForgedVerified int     `json:"forged_verified"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	KeyCacheHits   uint64  `json:"key_cache_hits,omitempty"`
	KeyCacheMisses uint64  `json:"key_cache_misses,omitempty"`
	// LedgerSyncEvery/LedgerRecords appear on runs with the durable
	// settlement ledger attached: the group-commit window and how many
	// proofs the ledger held after the run (must equal Settled).
	LedgerSyncEvery int `json:"ledger_sync_every,omitempty"`
	LedgerRecords   int `json:"ledger_records,omitempty"`
}

// lgParties is the fixed negotiation fixture: deterministic keys, a
// one-hour plan and the paper's running usage example (3% loss, so
// optimal/optimal settles in one round at x̂ = 965000).
type lgParties struct {
	edge, op *poc.KeyPair
	plan     poc.Plan
	view     core.View
}

func lgSetup() (*lgParties, error) {
	rng := sim.NewRNG(1234)
	edge, err := poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("edge"))
	if err != nil {
		return nil, err
	}
	op, err := poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("op"))
	if err != nil {
		return nil, err
	}
	return &lgParties{
		edge: edge, op: op,
		plan: poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5},
		view: core.View{Sent: 1_000_000, Received: 930_000},
	}, nil
}

func (p *lgParties) engineConfig() session.Config {
	return session.Config{
		Role: poc.RoleOperator, Plan: p.plan, Key: p.op.Private,
		Strategy: core.OptimalStrategy{}, View: p.view,
	}
}

func (p *lgParties) clientConfig() session.Config {
	return session.Config{
		Role: poc.RoleEdge, Plan: p.plan, Key: p.edge.Private,
		Strategy: core.OptimalStrategy{}, View: p.view,
	}
}

// quantile returns the q-quantile of latencies in milliseconds.
func lgQuantileMs(lat []float64, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i] * 1e3
}

// lgMuxSpec parameterizes one engine run.
type lgMuxSpec struct {
	name                            string
	sessions, conns, shards, wrk    int
	maxSessions, maxPending, forged int
	openFirst                       bool
	// ledgerSync > 0 attaches a real on-disk settlement ledger with
	// that group-commit window; every settled proof is appended and
	// the count is verified by replay after the run.
	ledgerSync int
}

// lgMuxRun serves one fresh engine on loopback and drives the mux
// client against it.
func lgMuxRun(p *lgParties, spec lgMuxSpec) (lgRun, error) {
	fail := func(err error) (lgRun, error) {
		return lgRun{}, fmt.Errorf("%s: %w", spec.name, err)
	}
	var led *ledger.Ledger
	var ledDir string
	if spec.ledgerSync > 0 {
		dir, err := os.MkdirTemp("", "tlc-lg-ledger")
		if err != nil {
			return fail(err)
		}
		ledDir = dir
		led, err = ledger.Open(ledger.Options{
			Dir: dir, FS: ledger.DirFS{}, SyncEvery: spec.ledgerSync,
		}, nil)
		if err != nil {
			return fail(err)
		}
	}
	ec := session.EngineConfig{
		Config: p.engineConfig(),
		Shards: spec.shards, Workers: spec.wrk,
		MaxSessions: spec.maxSessions, MaxPending: spec.maxPending,
		Seed: 99,
	}
	if led != nil {
		ec.Recorder = func(pr session.ProofRecord) {
			rec := ledger.Record{
				Kind: ledger.KindPoC, Cycle: 1,
				Subscriber: pr.PeerFP,
				X:          pr.X, Rounds: uint32(pr.Rounds), Proof: pr.Proof,
			}
			_ = led.Append(&rec) // bench harness; the replay count below catches losses
		}
	}
	eng, err := session.NewEngine(ec)
	if err != nil {
		return fail(err)
	}
	eng.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cwg sync.WaitGroup
		defer cwg.Wait()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			cwg.Add(1)
			go func(conn net.Conn) {
				defer cwg.Done()
				defer conn.Close() //tlcvet:allow errdiscard — loadgen teardown
				hello, err := protocol.ReadFrame(conn)
				if err != nil {
					return
				}
				_ = eng.ServeConn(conn, hello)
			}(conn)
		}
	}()

	conns := make([]io.ReadWriter, spec.conns)
	raw := make([]net.Conn, spec.conns)
	for i := range conns {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return fail(err)
		}
		if err := c.SetDeadline(time.Now().Add(10 * time.Minute)); err != nil {
			return fail(err)
		}
		raw[i], conns[i] = c, c
	}

	start := time.Now()
	res, err := session.RunClient(session.ClientConfig{
		Config:   p.clientConfig(),
		Sessions: spec.sessions,
		Conns:    conns,
		Seed:     7,
		Stopwatch: func() float64 {
			return time.Since(start).Seconds()
		},
		OpenFirst: spec.openFirst,
		Forge:     spec.forged,
	})
	wall := time.Since(start)
	for _, c := range raw {
		_ = c.Close()
	}
	_ = ln.Close()
	wg.Wait()
	eng.Stop()
	ledgerRecords := 0
	if led != nil {
		if cerr := led.Close(); cerr != nil {
			return fail(fmt.Errorf("ledger close: %w", cerr))
		}
		rerr := ledger.Replay(ledger.DirFS{}, ledDir, func(rec *ledger.Record) error {
			if rec.Kind == ledger.KindPoC {
				ledgerRecords++
			}
			return nil
		})
		if rerr != nil {
			return fail(fmt.Errorf("ledger replay: %w", rerr))
		}
		_ = os.RemoveAll(ledDir)
	}
	if err != nil {
		return fail(err)
	}

	accounted := res.Settled + res.Rejected + res.Failed +
		res.ForgedRejected + res.ForgedVerified
	if accounted != spec.sessions {
		return fail(fmt.Errorf("accounted %d of %d sessions (%+v)", accounted, spec.sessions, *res))
	}
	hits, misses := eng.KeyCacheStats()
	run := lgRun{
		Name: spec.name, Mode: "mux",
		Sessions: spec.sessions, Conns: spec.conns,
		Shards: spec.shards, Workers: spec.wrk,
		MaxSessions: spec.maxSessions, MaxPending: spec.maxPending,
		OpenFirst: spec.openFirst,
		WallSec:   wall.Seconds(),
		Settled:   res.Settled, Rejected: res.Rejected, Failed: res.Failed,
		PeakActive: eng.PeakActive(),
		ForgedSent: res.ForgedSent, ForgedRejected: res.ForgedRejected,
		ForgedVerified: res.ForgedVerified,
		P50Ms:          lgQuantileMs(res.Latencies, 0.50),
		P99Ms:          lgQuantileMs(res.Latencies, 0.99),
		KeyCacheHits:   hits, KeyCacheMisses: misses,
		LedgerSyncEvery: spec.ledgerSync, LedgerRecords: ledgerRecords,
	}
	if s := wall.Seconds(); s > 0 {
		run.SessionsPerSec = float64(res.Settled) / s
	}
	return run, nil
}

// lgBaselineRun measures the pre-engine tlcd shape: every session is
// its own TCP connection, key exchange and serving goroutine. workers
// bounds client-side concurrency the way -max-conns bounds the
// server's.
func lgBaselineRun(p *lgParties, sessions, workers int) (lgRun, error) {
	fail := func(err error) (lgRun, error) {
		return lgRun{}, fmt.Errorf("baseline: %w", err)
	}
	opDER, err := x509.MarshalPKIXPublicKey(p.op.Public)
	if err != nil {
		return fail(err)
	}
	edgeDER, err := x509.MarshalPKIXPublicKey(p.edge.Public)
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	rng := sim.NewRNG(4242)
	var awg sync.WaitGroup
	awg.Add(1)
	go func() {
		defer awg.Done()
		var cwg sync.WaitGroup
		defer cwg.Wait()
		serial := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			serial++
			seed := serial
			cwg.Add(1)
			go func(conn net.Conn) {
				defer cwg.Done()
				defer conn.Close() //tlcvet:allow errdiscard — loadgen teardown
				_ = conn.SetDeadline(time.Now().Add(10 * time.Minute))
				peerDER, err := protocol.ReadFrame(conn)
				if err != nil {
					return
				}
				pub, err := x509.ParsePKIXPublicKey(peerDER)
				if err != nil {
					return
				}
				key, ok := pub.(*rsa.PublicKey)
				if !ok {
					return
				}
				if err := protocol.WriteFrame(conn, opDER); err != nil {
					return
				}
				party := &protocol.Party{
					Role: poc.RoleOperator, Plan: p.plan, Keys: p.op,
					PeerKey: key, Strategy: core.OptimalStrategy{}, View: p.view,
					RNG: rng.Fork("srv" + strconv.Itoa(seed)),
				}
				_, _ = party.Run(conn, true)
			}(conn)
		}
	}()

	var (
		mu        sync.Mutex
		settled   int
		failed    int
		latencies []float64
	)
	jobs := make(chan int)
	var wwg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := range jobs {
				err := func() error {
					t0 := time.Since(start).Seconds()
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						return err
					}
					defer conn.Close() //tlcvet:allow errdiscard — loadgen teardown
					if err := conn.SetDeadline(time.Now().Add(10 * time.Minute)); err != nil {
						return err
					}
					if err := protocol.WriteFrame(conn, edgeDER); err != nil {
						return err
					}
					peerDER, err := protocol.ReadFrame(conn)
					if err != nil {
						return err
					}
					pub, err := x509.ParsePKIXPublicKey(peerDER)
					if err != nil {
						return err
					}
					key, ok := pub.(*rsa.PublicKey)
					if !ok {
						return fmt.Errorf("server key is %T", pub)
					}
					party := &protocol.Party{
						Role: poc.RoleEdge, Plan: p.plan, Keys: p.edge,
						PeerKey: key, Strategy: core.OptimalStrategy{}, View: p.view,
						RNG: rng.Fork("cli" + strconv.Itoa(i)),
					}
					if _, err := party.Run(conn, false); err != nil {
						return err
					}
					mu.Lock()
					settled++
					latencies = append(latencies, time.Since(start).Seconds()-t0)
					mu.Unlock()
					return nil
				}()
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := 0; i < sessions; i++ {
		jobs <- i
	}
	close(jobs)
	wwg.Wait()
	wall := time.Since(start)
	_ = ln.Close()
	awg.Wait()

	run := lgRun{
		Name: "baseline", Mode: "baseline",
		Sessions: sessions, Conns: workers,
		WallSec: wall.Seconds(),
		Settled: settled, Failed: failed,
		P50Ms: lgQuantileMs(latencies, 0.50),
		P99Ms: lgQuantileMs(latencies, 0.99),
	}
	if s := wall.Seconds(); s > 0 {
		run.SessionsPerSec = float64(settled) / s
	}
	return run, nil
}

// runLoadgen executes the suite selected by the lg flags and applies
// the hard invariants inline, so a bare `tlcbench -lg-smoke` is a
// pass/fail gate without any report post-processing.
func runLoadgen() {
	p, err := lgSetup()
	if err != nil {
		fatalf("loadgen: %v", err)
	}
	shardCounts := parseShards(*flagLGShards)
	sessions := *flagLGSessions
	// Rate/peak runs size MaxPending to the offered load: these runs
	// measure engine throughput below the admission cap, so queue
	// depth must not be the limiter (the overload run measures the
	// opposite on purpose).
	suiteStart := time.Now()
	report := lgReport{GoMaxProcs: runtime.GOMAXPROCS(0)}
	addRun := func(run lgRun, err error) lgRun {
		if err != nil {
			fatalf("loadgen: %v", err)
		}
		fmt.Printf("== loadgen %-14s %8d sessions  %8.0f sess/sec  settled=%d rejected=%d failed=%d forged_verified=%d peak=%d p99=%.1fms (%.2fs)\n",
			run.Name, run.Sessions, run.SessionsPerSec, run.Settled, run.Rejected,
			run.Failed, run.ForgedVerified, run.PeakActive, run.P99Ms, run.WallSec)
		report.Runs = append(report.Runs, run)
		return run
	}
	mustZeroRejected := func(run lgRun) {
		if run.Rejected != 0 || run.Failed != 0 {
			fatalf("loadgen: %s rejected/failed = %d/%d below the admission cap, want 0/0",
				run.Name, run.Rejected, run.Failed)
		}
	}

	for _, sc := range shardCounts {
		run := addRun(lgMuxRun(p, lgMuxSpec{
			name:     "mux_shards" + strconv.Itoa(sc),
			sessions: sessions, conns: *flagLGConns,
			shards: sc, wrk: *flagLGWorkers,
			maxPending: sessions,
		}))
		mustZeroRejected(run)
	}

	if *flagLGLedger {
		// Durability on vs off: the same mux load with every settled
		// proof appended to a real on-disk ledger, at a tight and a
		// relaxed group-commit window. The replayed record count must
		// equal the settled count — durability that silently drops
		// settlements would be worse than none.
		for _, syncEvery := range []int{1, 16} {
			run := addRun(lgMuxRun(p, lgMuxSpec{
				name:     "mux_ledger_sync" + strconv.Itoa(syncEvery),
				sessions: sessions, conns: *flagLGConns,
				shards: shardCounts[len(shardCounts)-1], wrk: *flagLGWorkers,
				maxPending: sessions, ledgerSync: syncEvery,
			}))
			mustZeroRejected(run)
			if run.LedgerRecords != run.Settled {
				fatalf("loadgen: %s ledger holds %d proofs, want %d settled",
					run.Name, run.LedgerRecords, run.Settled)
			}
		}
	}

	if !*flagLGSmoke {
		base := *flagLGBaseline
		if base == 0 {
			base = sessions / 4
			if base > 5000 {
				base = 5000
			}
		}
		addRun(lgBaselineRun(p, base, 64))

		if *flagLGPeak > 0 {
			run := addRun(lgMuxRun(p, lgMuxSpec{
				name:     "peak",
				sessions: *flagLGPeak, conns: *flagLGConns,
				shards: shardCounts[len(shardCounts)-1], wrk: *flagLGWorkers,
				maxPending: *flagLGPeak, openFirst: true,
			}))
			mustZeroRejected(run)
			if run.PeakActive != int64(run.Settled) {
				fatalf("loadgen: peak run held %d sessions resident, want %d", run.PeakActive, run.Settled)
			}
		}

		// Overload: 8x the admission cap; the engine must split the
		// load into settlements and typed rejections, not collapse.
		overCap := 1024
		over := addRun(lgMuxRun(p, lgMuxSpec{
			name:     "overload",
			sessions: overCap * 8, conns: *flagLGConns,
			shards: shardCounts[len(shardCounts)-1], wrk: *flagLGWorkers,
			maxSessions: overCap, maxPending: 64, openFirst: true,
		}))
		if over.Rejected == 0 {
			fatalf("loadgen: overload run saw no admission rejections")
		}
		if over.Settled == 0 {
			fatalf("loadgen: overload run settled nothing — engine collapsed")
		}

		forged := addRun(lgMuxRun(p, lgMuxSpec{
			name:     "forged",
			sessions: 512, conns: *flagLGConns,
			shards: shardCounts[len(shardCounts)-1], wrk: *flagLGWorkers,
			maxPending: 512, forged: 64,
		}))
		if forged.ForgedSent != 64 || forged.ForgedRejected != 64 {
			fatalf("loadgen: forged sent/rejected = %d/%d, want 64/64",
				forged.ForgedSent, forged.ForgedRejected)
		}
	}

	for _, run := range report.Runs {
		if run.ForgedVerified != 0 {
			fatalf("loadgen: %s verified %d forged PoCs — charging integrity broken", run.Name, run.ForgedVerified)
		}
	}
	report.TotalSec = time.Since(suiteStart).Seconds()
	report.Note = fmt.Sprintf("loopback loadgen, GOMAXPROCS=%d", report.GoMaxProcs)

	if *flagLGJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("loadgen: marshal report: %v", err)
		}
		data = append(data, '\n')
		if *flagLGJSON == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fatalf("loadgen: write report: %v", err)
			}
		} else if err := os.WriteFile(*flagLGJSON, data, 0o644); err != nil {
			fatalf("loadgen: write %s: %v", *flagLGJSON, err)
		}
	}
}

// lgCheck validates a checked-in loadgen report: schema, the
// charging-integrity invariant (zero forged PoCs verified), overload
// behaviour (rejection, not collapse) and the engine's throughput win
// over the conn-per-session baseline. verify.sh runs it so a stale or
// hand-edited BENCH_tlcd_scale.json fails loudly.
func lgCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("lg-check: %v", err)
	}
	var rep lgReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("lg-check: %s: %v", path, err)
	}
	byName := make(map[string]lgRun, len(rep.Runs))
	for _, run := range rep.Runs {
		if run.ForgedVerified != 0 {
			fatalf("lg-check: %s: run %s verified %d forged PoCs", path, run.Name, run.ForgedVerified)
		}
		if run.Name == "" || run.Sessions <= 0 || run.WallSec <= 0 {
			fatalf("lg-check: %s: run %q malformed (sessions=%d wall=%gs)", path, run.Name, run.Sessions, run.WallSec)
		}
		byName[run.Name] = run
	}
	need := func(name string) lgRun {
		run, ok := byName[name]
		if !ok {
			fatalf("lg-check: %s: missing run %q (have %s)", path, name, lgRunNames(rep.Runs))
		}
		return run
	}

	base := need("baseline")
	if base.SessionsPerSec <= 0 || base.Settled == 0 {
		fatalf("lg-check: %s: baseline settled nothing", path)
	}
	muxRuns := 0
	for _, run := range rep.Runs {
		if !strings.HasPrefix(run.Name, "mux_shards") {
			continue
		}
		muxRuns++
		if run.SessionsPerSec <= base.SessionsPerSec {
			fatalf("lg-check: %s: %s at %.0f sess/sec does not beat baseline %.0f",
				path, run.Name, run.SessionsPerSec, base.SessionsPerSec)
		}
	}
	if muxRuns < 2 {
		fatalf("lg-check: %s: want >= 2 mux shard settings, found %d", path, muxRuns)
	}

	peak := need("peak")
	if peak.Sessions < 100_000 || peak.PeakActive < 100_000 {
		fatalf("lg-check: %s: peak run held %d/%d sessions, want >= 100000 resident",
			path, peak.PeakActive, peak.Sessions)
	}
	if peak.Settled != peak.Sessions {
		fatalf("lg-check: %s: peak run settled %d of %d", path, peak.Settled, peak.Sessions)
	}

	over := need("overload")
	if over.Rejected == 0 || over.Settled == 0 {
		fatalf("lg-check: %s: overload run rejected=%d settled=%d, want both > 0",
			path, over.Rejected, over.Settled)
	}

	forged := need("forged")
	if forged.ForgedSent == 0 || forged.ForgedRejected != forged.ForgedSent {
		fatalf("lg-check: %s: forged sent/rejected = %d/%d", path, forged.ForgedSent, forged.ForgedRejected)
	}
	fmt.Printf("lg-check: %s ok (%d runs; peak %d resident; mux beats baseline %.0f sess/sec)\n",
		path, len(rep.Runs), peak.PeakActive, base.SessionsPerSec)
}

func lgRunNames(runs []lgRun) string {
	names := make([]string, len(runs))
	for i, r := range runs {
		names[i] = r.Name
	}
	return strings.Join(names, ", ")
}
