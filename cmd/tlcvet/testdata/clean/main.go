// Package cleanmod has nothing to report: the end-to-end test asserts
// tlcvet exits 0 and prints nothing.
package cleanmod

import "os"

func removeCarefully(name string) error {
	if err := os.Remove(name); err != nil {
		return err
	}
	return nil
}
