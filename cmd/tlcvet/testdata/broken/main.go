// Package brokenmod fails to type-check: the end-to-end test asserts
// type errors are fatal (exit 2), because analyzers on partial type
// information silently miss findings.
package brokenmod

func answer() int {
	return "forty-two"
}
