package findingsmod

import "os"

func cleanupTestArtifacts() {
	os.Remove("c.txt")
}
