// Package findingsmod seeds deliberate violations: the golden
// end-to-end test asserts tlcvet reports them in stable order and
// exits 1.
package findingsmod

import "os"

func drop() {
	os.Remove("a.txt")
}

func stale() error {
	//tlcvet:allow simtyme — misspelled, suppresses nothing
	return os.Remove("b.txt")
}
