module findingsmod

go 1.21
