package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"tlc/internal/lint"
)

// tlcvetBin is the real binary under test, built once in TestMain; the
// exit-code contract (0 clean, 1 findings, 2 load/type failure) is
// what verify.sh keys off and deserves an end-to-end lock.
var tlcvetBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tlcvet-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tlcvetBin = filepath.Join(dir, "tlcvet")
	build := exec.Command("go", "build", "-o", tlcvetBin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building tlcvet: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	if err := os.RemoveAll(dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(code)
}

// runVet executes the built binary inside the named fixture module,
// which carries its own go.mod so the loader roots there instead of in
// the tlc module.
func runVet(t *testing.T, module string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", module))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tlcvetBin, args...)
	cmd.Dir = dir
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err = cmd.Run()
	exit = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running tlcvet in %s: %v", module, err)
		}
		exit = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), exit
}

func TestExitCleanModule(t *testing.T) {
	stdout, stderr, exit := runVet(t, "clean", "./...")
	if exit != 0 || stdout != "" {
		t.Fatalf("clean module: exit %d, stdout %q, stderr %q; want silent exit 0", exit, stdout, stderr)
	}
}

func TestExitFindingsStableOutput(t *testing.T) {
	want := "extra_test.go:6: [errdiscard] call to os.Remove discards its error result; handle it, assign it, or annotate //tlcvet:allow errdiscard\n" +
		"main.go:9: [errdiscard] call to os.Remove discards its error result; handle it, assign it, or annotate //tlcvet:allow errdiscard\n" +
		"main.go:13: [staleallow] //tlcvet:allow names no registered check, so it suppresses nothing; fix the check name or delete the directive\n"
	for i := 0; i < 2; i++ { // twice: the order must be stable run over run
		stdout, stderr, exit := runVet(t, "findings", "./...")
		if exit != 1 {
			t.Fatalf("findings module: exit %d, stderr %q; want 1", exit, stderr)
		}
		if stdout != want {
			t.Fatalf("findings output (run %d):\n--- got ---\n%s--- want ---\n%s", i, stdout, want)
		}
	}
}

func TestExitFindingsWithoutTests(t *testing.T) {
	stdout, _, exit := runVet(t, "findings", "-tests=false", "./...")
	if exit != 1 {
		t.Fatalf("exit %d, want 1", exit)
	}
	want := "main.go:9: [errdiscard] call to os.Remove discards its error result; handle it, assign it, or annotate //tlcvet:allow errdiscard\n" +
		"main.go:13: [staleallow] //tlcvet:allow names no registered check, so it suppresses nothing; fix the check name or delete the directive\n"
	if stdout != want {
		t.Fatalf("-tests=false output:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}
}

func TestExitTypeErrorsFatal(t *testing.T) {
	stdout, stderr, exit := runVet(t, "broken", "./...")
	if exit != 2 {
		t.Fatalf("broken module: exit %d, stdout %q; want 2", exit, stdout)
	}
	if stderr == "" {
		t.Fatal("broken module reported nothing on stderr")
	}
}

func TestJSONOutput(t *testing.T) {
	stdout, stderr, exit := runVet(t, "findings", "-json", "./...")
	if exit != 1 {
		t.Fatalf("exit %d, stderr %q; want 1", exit, stderr)
	}
	var report lint.JSONReport
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(report.Findings) != 3 {
		t.Fatalf("JSON findings = %d, want 3", len(report.Findings))
	}
	if f := report.Findings[0]; f.File != "extra_test.go" || f.Check != "errdiscard" {
		t.Fatalf("first JSON finding = %+v", f)
	}
}
