// Command tlcvet runs the project's static-analysis pass (see
// internal/lint): determinism of the simulated testbed (simtime,
// seededrand), crypto hygiene of the Proof-of-Charging (cryptorand),
// error discipline (errdiscard), allocation-free hot paths (hotalloc),
// the two-tier metrics rule (metricstier), goroutine stop paths
// (goroleak) and waiver hygiene (staleallow). It is wired into
// verify.sh as a tier-1 gate.
//
// Usage:
//
//	tlcvet [-checks simtime,errdiscard] [-tests=false] [-json|-sarif] [-json-out file] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Matched
// packages include their in-package _test.go files unless -tests=false.
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check failure.
// Findings print as "file:line: [check] message" and are suppressed
// per line with a //tlcvet:allow <check> directive (same line or the
// line above) followed by a justification. -json and -sarif replace the
// plain rendering on stdout with a machine-readable report (exit status
// is unchanged); -json-out additionally archives the JSON report to a
// file regardless of the stdout format.
package main

import (
	"flag"
	"fmt"
	"os"

	"tlc/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list registered checks and exit")
	tests := flag.Bool("tests", true, "analyze in-package _test.go files of matched packages")
	jsonOut := flag.Bool("json", false, "write the findings report to stdout as JSON instead of plain text")
	sarifOut := flag.Bool("sarif", false, "write the findings report to stdout as SARIF 2.1.0 instead of plain text")
	jsonFile := flag.String("json-out", "", "also archive the JSON report to this file")
	flag.Usage = func() {
		//tlcvet:allow errdiscard — best-effort usage text on the flag package's writer
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tlcvet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "tlcvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}

	// Type errors are fatal: analyzers running on partial type
	// information can silently miss findings, which would make a green
	// gate meaningless.
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "tlcvet: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, findings, analyzers, cwd); err != nil {
			fmt.Fprintln(os.Stderr, "tlcvet:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, findings, analyzers, cwd); err != nil {
			fmt.Fprintln(os.Stderr, "tlcvet:", err)
			os.Exit(2)
		}
	default:
		lint.Render(os.Stdout, findings, cwd)
	}
	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlcvet:", err)
			os.Exit(2)
		}
		werr := lint.WriteJSON(f, findings, analyzers, cwd)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tlcvet:", werr)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
