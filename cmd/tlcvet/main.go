// Command tlcvet runs the project's static-analysis pass (see
// internal/lint): determinism of the simulated testbed (simtime,
// seededrand), crypto hygiene of the Proof-of-Charging (cryptorand)
// and error discipline (errdiscard). It is wired into verify.sh as a
// tier-1 gate.
//
// Usage:
//
//	tlcvet [-checks simtime,errdiscard] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 findings, 2 usage or load/type-check failure.
// Findings print as "file:line: [check] message" and are suppressed
// per line with a //tlcvet:allow <check> directive (same line or the
// line above) followed by a justification.
package main

import (
	"flag"
	"fmt"
	"os"

	"tlc/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list registered checks and exit")
	flag.Usage = func() {
		//tlcvet:allow errdiscard — best-effort usage text on the flag package's writer
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tlcvet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlcvet:", err)
		os.Exit(2)
	}

	// Type errors are fatal: analyzers running on partial type
	// information can silently miss findings, which would make a green
	// gate meaningless.
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "tlcvet: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	lint.Render(os.Stdout, findings, cwd)
	if len(findings) > 0 {
		os.Exit(1)
	}
}
