#!/usr/bin/env sh
# Tier-1 verify gate. Run from anywhere; every PR must pass this.
#
#   build      — everything compiles
#   gofmt      — no file differs from canonical formatting
#   vet        — the stock Go checks
#   tlcvet     — project invariants, test files included: sim
#                determinism (simtime, seededrand), PoC crypto hygiene
#                (cryptorand), error discipline (errdiscard),
#                allocation-free hot paths (hotalloc), the two-tier
#                metrics rule (metricstier), goroutine stop paths
#                (goroleak) and waiver hygiene (staleallow); the JSON
#                report is archived to tlcvet_report.json
#   sweep      — parallel sweep engine smoke: ordering, panic
#                propagation and figure parity under the race detector
#   shardparity — sharded event engine determinism under the race
#                detector: byte-identical city replay across shard
#                counts, lane merge order, randomized differential
#   chaos      — end-to-end fault-injection cycle under the race
#                detector: every fault family fires, the trace replays
#                byte-identically, and the settlement stays bounded
#   race       — full test suite under the race detector
#   operator   — the live tlcd operator: concurrent connections
#                (stalled-client regression), a real HTTP scrape of
#                /metrics and /healthz, signal-driven drain, and the
#                mux/legacy first-frame routing
#   tlcdscale  — the sharded session engine: admission-control overload
#                regression under the race detector (reject, never
#                deadlock or leak), a ~2k-session loadgen smoke under
#                -race asserting zero rejections below the admission
#                cap, and schema + invariant validation of the
#                checked-in BENCH_tlcd_scale.json
#   ledger     — the durable charging ledger: the crash-point torture
#                sweeps (every kill offset of the tail segment, bit
#                flips, injected fsync failpoints) plus the replay
#                differential under the race detector, a short
#                coverage-guided fuzz of segment replay, and schema +
#                invariant validation of the checked-in
#                BENCH_ledger.json durability cost curve
#   allocs     — testing.AllocsPerRun guards for the event-engine,
#                metrics-observation and frame-reader hot paths; these
#                skip themselves under -race (its instrumentation
#                perturbs counts), so they need this separate non-race
#                pass
#   bench      — every benchmark compiles and survives one iteration,
#                plus a quick sharded city run at -shards 2 through
#                the tlcbench CLI (exercises the -shards plumbing)
#   roaming    — the multi-operator settlement chain: chain codec and
#                verifier forgery battery, the three-party wire
#                protocol, the chained-game/settlement property tests
#                and the roaming experiment (byz_chain_verified == 0,
#                worker parity), all under the race detector, plus a
#                short coverage-guided fuzz of the chain verifier
#   fuzz       — short coverage-guided smoke on the adversarial
#                surfaces: the protocol framing decoder, the mux frame
#                decoder and the PoC verifier (forged proofs must
#                never verify)
set -eu
cd "$(dirname "$0")"

# stage <name> <cmd...> runs one gate with a named, timed header so a
# red CI log says which stage died and where the minutes went.
stage() {
	_name=$1
	shift
	printf '==> %-9s %s\n' "$_name" "$*"
	_t0=$(date +%s)
	"$@"
	printf '<== %-9s ok (%ss)\n' "$_name" "$(($(date +%s) - _t0))"
}

city_smoke() {
	go run ./cmd/tlcbench -experiment city -quick -shards 2 -json - >/dev/null
}

gofmt_clean() {
	_unformatted=$(gofmt -l .)
	if [ -n "$_unformatted" ]; then
		echo 'gofmt: the following files need gofmt -w:' >&2
		echo "$_unformatted" >&2
		return 1
	fi
}

stage build go build ./...
stage gofmt gofmt_clean
stage vet go vet ./...
stage tlcvet go run ./cmd/tlcvet -json-out tlcvet_report.json ./...
stage sweep go test -run Parallel -race ./internal/experiment
stage shardparity go test -run ShardParity -race ./internal/sim ./internal/netem ./internal/stats ./internal/experiment
stage chaos go test -run Chaos -race ./internal/experiment
stage race go test -race ./...
stage operator go test -run Operator -race -count=1 ./cmd/tlcd
stage tlcdscale go test -run EngineOverload -race -count=1 ./internal/session
stage tlcdscale go run -race ./cmd/tlcbench -lg-smoke -lg-sessions 2000
stage tlcdscale go run ./cmd/tlcbench -lg-check BENCH_tlcd_scale.json
stage ledger go test -run 'Torture|Prop' -short -race ./internal/ledger
stage ledger go test -run '^$' -fuzz '^FuzzLedgerReplay$' -fuzztime 10s ./internal/ledger
stage ledger go run ./cmd/tlcbench -ledger-check BENCH_ledger.json
stage allocs go test -run ZeroAlloc ./internal/sim ./internal/netem ./internal/metrics ./internal/protocol ./internal/ledger
stage bench go test -run '^$' -bench . -benchtime 1x ./...
stage bench city_smoke
stage roaming go test -run 'Chain|Roaming|Byzantine|Settle|Forger|ChainedG' -race ./internal/poc ./internal/protocol ./internal/roaming ./internal/experiment
stage roaming go test -run '^$' -fuzz '^FuzzChainVerify$' -fuzztime 10s ./internal/poc
stage fuzz go test -run '^$' -fuzz '^FuzzReadFrame$' -fuzztime 10s ./internal/protocol
stage fuzz go test -run '^$' -fuzz '^FuzzDecodeMux$' -fuzztime 10s ./internal/session
stage fuzz go test -run '^$' -fuzz '^FuzzPoCVerify$' -fuzztime 10s ./internal/poc
