#!/usr/bin/env sh
# Tier-1 verify gate. Run from anywhere; every PR must pass this.
#
#   build      — everything compiles
#   vet        — the stock Go checks
#   tlcvet     — project invariants: sim determinism (simtime,
#                seededrand), PoC crypto hygiene (cryptorand), error
#                discipline (errdiscard); see internal/lint
#   sweep      — parallel sweep engine smoke: ordering, panic
#                propagation and figure parity under the race detector
#   chaos      — end-to-end fault-injection cycle under the race
#                detector: every fault family fires, the trace replays
#                byte-identically, and the settlement stays bounded
#   test -race — full test suite under the race detector
#   e2e scrape — the live tlcd operator: concurrent connections
#                (stalled-client regression), a real HTTP scrape of
#                /metrics and /healthz, and signal-driven drain
#   allocs     — testing.AllocsPerRun guards for the event-engine and
#                metrics-observation hot paths; these skip themselves
#                under -race (its instrumentation perturbs counts), so
#                they need this separate non-race pass
#   bench 1x   — every benchmark compiles and survives one iteration
#   fuzz 10s   — short coverage-guided smoke on the two adversarial
#                surfaces: the protocol framing decoder and the PoC
#                verifier (forged proofs must never verify)
set -eu
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/tlcvet ./...
go test -run Parallel -race ./internal/experiment
go test -run Chaos -race ./internal/experiment
go test -race ./...
go test -run Operator -race -count=1 ./cmd/tlcd
go test -run ZeroAlloc ./internal/sim ./internal/netem ./internal/metrics
go test -run '^$' -bench . -benchtime 1x ./...
go test -run '^$' -fuzz '^FuzzReadFrame$' -fuzztime 10s ./internal/protocol
go test -run '^$' -fuzz '^FuzzPoCVerify$' -fuzztime 10s ./internal/poc
