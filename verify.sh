#!/usr/bin/env sh
# Tier-1 verify gate. Run from anywhere; every PR must pass this.
#
#   build      — everything compiles
#   vet        — the stock Go checks
#   tlcvet     — project invariants: sim determinism (simtime,
#                seededrand), PoC crypto hygiene (cryptorand), error
#                discipline (errdiscard); see internal/lint
#   sweep      — parallel sweep engine smoke: ordering, panic
#                propagation and figure parity under the race detector
#   test -race — full test suite under the race detector
set -eu
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/tlcvet ./...
go test -run Parallel -race ./internal/experiment
go test -race ./...
