package tlc

import (
	"crypto/rsa"
	"fmt"
	"sort"
	"time"

	"tlc/internal/receipts"
)

// This file implements the §8 extensions: the multi-access edge
// (per-operator TLC instances for devices that combine several 4G/5G
// operators) and the durable receipt archive both parties keep.

// OperatorAccount is one cellular operator a multi-access edge device
// uses, with its agreed plan and the usage the edge metered on that
// operator's network. "The edge should classify its data traffic by
// operators when generating the charging records" (§8).
type OperatorAccount struct {
	Name  string
	Plan  Plan
	Keys  *rsa.PublicKey // operator's public key
	Usage Usage          // edge-side usage view for this operator
}

// MultiOperatorOutcome is one operator's settlement.
type MultiOperatorOutcome struct {
	Operator string
	Receipt  *Receipt
	Err      error
}

// SettleMultiOperator runs one TLC negotiation per operator for a
// multi-access edge device. Each negotiation is independent: its own
// plan, keys and usage classification. opKeys maps operator name to
// that operator's *private* key pair — in production each operator
// runs its own endpoint; this in-process form serves simulations and
// tests. Results are sorted by operator name.
func SettleMultiOperator(edgeKeys *KeyPair, accounts []OperatorAccount,
	opKeys map[string]*KeyPair, strategy Strategy, seed int64) []MultiOperatorOutcome {
	out := make([]MultiOperatorOutcome, 0, len(accounts))
	for i, acct := range accounts {
		res := MultiOperatorOutcome{Operator: acct.Name}
		kp, ok := opKeys[acct.Name]
		if !ok {
			res.Err = fmt.Errorf("tlc: no key pair for operator %q", acct.Name)
			out = append(out, res)
			continue
		}
		opReceipt, _, err := NegotiateLocal(acct.Plan, edgeKeys, kp,
			acct.Usage, acct.Usage, strategy, strategy, seed+int64(i))
		if err != nil {
			res.Err = err
			out = append(out, res)
			continue
		}
		res.Receipt = opReceipt
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Operator < out[j].Operator })
	return out
}

// Archive is a durable receipt store (one per party, per peer).
type Archive struct {
	store *receipts.Store
}

// OpenArchive creates or opens a receipt archive directory.
func OpenArchive(dir string) (*Archive, error) {
	s, err := receipts.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Archive{store: s}, nil
}

// Save archives a settled receipt's proof.
func (a *Archive) Save(r *Receipt) (id string, err error) {
	rec, err := a.store.Put(r.Proof, time.Now())
	if err != nil {
		return "", err
	}
	return rec.ID, nil
}

// ArchiveEntry summarises one archived receipt.
type ArchiveEntry struct {
	ID    string
	X     uint64
	Start time.Time
	End   time.Time
	C     float64
}

// List returns the archive contents ordered by cycle start.
func (a *Archive) List() ([]ArchiveEntry, error) {
	recs, err := a.store.List()
	if err != nil {
		return nil, err
	}
	out := make([]ArchiveEntry, len(recs))
	for i, r := range recs {
		out[i] = ArchiveEntry{
			ID:    r.ID,
			X:     r.X,
			Start: time.Unix(0, r.PlanStart),
			End:   time.Unix(0, r.PlanEnd),
			C:     r.PlanC,
		}
	}
	return out, nil
}

// AuditReport is the outcome of re-verifying the whole archive.
type AuditReport struct {
	Valid        int
	Invalid      int
	TotalSettled uint64
	Failures     map[string]error
}

// Audit reruns Algorithm 2 across the archive with a shared replay
// set and totals the validly settled volume.
func (a *Archive) Audit(edgeKey, operatorKey *rsa.PublicKey) (*AuditReport, error) {
	results, err := a.store.Audit(edgeKey, operatorKey)
	if err != nil {
		return nil, err
	}
	rep := &AuditReport{Failures: map[string]error{}}
	for _, r := range results {
		if r.Err != nil {
			rep.Invalid++
			rep.Failures[r.ID] = r.Err
			continue
		}
		rep.Valid++
		rep.TotalSettled += r.X
	}
	return rep, nil
}
