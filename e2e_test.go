package tlc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndCLI builds the real binaries and drives the full
// operational workflow: generate keys with tlckeys, settle a cycle
// between a tlcd operator and a tlcd edge over TCP, then verify the
// stored proof with tlcverify — the complete §5.3 lifecycle as a user
// would run it.
func TestEndToEndCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	tlcd := build("tlcd")
	tlcverify := build("tlcverify")
	tlckeys := build("tlckeys")

	// 1. Key setup (§5.3.1): each party generates a pair and
	//    publishes the public half.
	for _, party := range []string{"edge", "operator"} {
		out, err := exec.Command(tlckeys, "-out", filepath.Join(dir, party)).CombinedOutput()
		if err != nil {
			t.Fatalf("tlckeys %s: %v\n%s", party, err, out)
		}
		for _, suffix := range []string{".key", ".pub"} {
			if _, err := os.Stat(filepath.Join(dir, party+suffix)); err != nil {
				t.Fatalf("tlckeys did not write %s%s: %v", party, suffix, err)
			}
		}
	}

	// 2. Settle a cycle over TCP with the persisted keys.
	const addr = "127.0.0.1:17075"
	opProof := filepath.Join(dir, "op.poc")
	edgeProof := filepath.Join(dir, "edge.poc")
	operator := exec.Command(tlcd, "-role", "operator", "-listen", addr,
		"-key", filepath.Join(dir, "operator.key"),
		"-sent", "1000000", "-received", "930000", "-proof-out", opProof)
	if err := operator.Start(); err != nil {
		t.Fatal(err)
	}
	defer operator.Process.Kill()

	var edgeOut []byte
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		edge := exec.Command(tlcd, "-role", "edge", "-connect", addr,
			"-key", filepath.Join(dir, "edge.key"),
			"-sent", "1000000", "-received", "930000", "-proof-out", edgeProof)
		edgeOut, err = edge.CombinedOutput()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("edge settlement never succeeded: %v\n%s", err, edgeOut)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(string(edgeOut), "settled: 965000 bytes in 1 round(s)") {
		t.Fatalf("edge output:\n%s", edgeOut)
	}
	if err := operator.Wait(); err != nil {
		t.Fatalf("operator exited with %v", err)
	}

	// Both sides stored byte-identical proofs.
	p1, err := os.ReadFile(opProof)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := os.ReadFile(edgeProof)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) != string(p2) {
		t.Fatal("operator and edge stored different proofs")
	}

	// 3. Public verification (§5.3.3). tlcd anchors the cycle at the
	//    current hour, so feed tlcverify the same window.
	cycleStart := time.Now().Truncate(time.Hour).Add(-time.Hour).UTC().Format(time.RFC3339)
	okOut, err := exec.Command(tlcverify,
		"-edge-key", filepath.Join(dir, "edge.pub"),
		"-operator-key", filepath.Join(dir, "operator.pub"),
		"-cycle-start", cycleStart,
		opProof).CombinedOutput()
	if err != nil {
		t.Fatalf("tlcverify rejected a valid proof: %v\n%s", err, okOut)
	}
	if !strings.Contains(string(okOut), "OK (settled 965000 bytes)") {
		t.Fatalf("tlcverify output:\n%s", okOut)
	}

	// 4. Negative path: unrelated keys must be rejected.
	wrongOut, err := exec.Command(tlcverify,
		"-edge-key", filepath.Join(dir, "edge.pub"),
		"-operator-key", filepath.Join(dir, "edge.pub"),
		"-cycle-start", cycleStart,
		opProof).CombinedOutput()
	if err == nil {
		t.Fatalf("tlcverify accepted a proof under unrelated keys:\n%s", wrongOut)
	}
	if !strings.Contains(string(wrongOut), "INVALID") {
		t.Fatalf("tlcverify output:\n%s", wrongOut)
	}
}
