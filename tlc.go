// Package tlc is a Trusted, Loss-tolerant Charging library for the
// cellular edge, reproducing "Bridging the Data Charging Gap in the
// Cellular Edge" (SIGCOMM 2019).
//
// A cellular operator and an edge application vendor meter the same
// traffic at different points, so data loss and selfish claims open a
// charging gap between them. TLC closes it with a one-round
// loss-selfishness cancellation game and binds the outcome into a
// publicly verifiable Proof-of-Charging (PoC):
//
//	keys, _ := tlc.GenerateKeyPair()
//	peer, _ := tlc.GenerateKeyPair() // exchanged out of band
//	plan := tlc.Plan{Start: cycleStart, End: cycleEnd, C: 0.5}
//
//	edge := tlc.NewNegotiator(tlc.Edge, plan, keys, peer.Public(),
//		tlc.Usage{Sent: 1_000_000, Received: 930_000}, tlc.Optimal)
//	receipt, err := edge.Negotiate(conn, false) // over any net.Conn
//
//	// Any third party can audit the receipt:
//	err = tlc.Verify(receipt.Proof, plan, keys.Public(), peer.Public())
//
// The internal packages contain the full emulated testbed (LTE core,
// small-cell RAN, workloads) used to regenerate every figure of the
// paper; cmd/tlcbench drives them.
package tlc

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"time"

	"tlc/internal/core"
	"tlc/internal/keyio"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

// Role identifies a negotiating party.
type Role int

const (
	// Edge is the edge application vendor (pays for data).
	Edge Role = iota
	// Operator is the cellular operator (charges for data).
	Operator
)

// Strategy selects the negotiation behaviour (§5.1, §7.1).
type Strategy int

const (
	// Honest reports the party's true record.
	Honest Strategy = iota
	// Optimal plays the minimax/maximin equilibrium: guaranteed
	// one-round convergence to the plan-correct charge against a
	// rational peer (Theorems 3-4).
	Optimal
	// RandomSelfish is a selfish party unaware of the optimal play;
	// it converges in a few rounds inside the Theorem 2 bounds.
	RandomSelfish
)

func (s Strategy) core() core.Strategy {
	switch s {
	case Honest:
		return core.HonestStrategy{}
	case RandomSelfish:
		return core.RandomSelfishStrategy{}
	default:
		return core.OptimalStrategy{}
	}
}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Honest:
		return "honest"
	case RandomSelfish:
		return "random-selfish"
	default:
		return "optimal"
	}
}

// KeyPair wraps a party's RSA signing keys (§5.3.1).
type KeyPair struct {
	inner *poc.KeyPair
}

// GenerateKeyPair creates an RSA-1024 pair (the paper's prototype
// parameters) using crypto/rand.
func GenerateKeyPair() (*KeyPair, error) {
	return GenerateKeyPairBits(poc.DefaultKeyBits)
}

// GenerateKeyPairBits creates a pair with an explicit modulus size.
func GenerateKeyPairBits(bits int) (*KeyPair, error) {
	kp, err := poc.GenerateKeyPair(bits, nil)
	if err != nil {
		return nil, err
	}
	return &KeyPair{inner: kp}, nil
}

// Public returns the public half for distribution to peers and
// verifiers.
func (k *KeyPair) Public() *rsa.PublicKey { return k.inner.Public }

// Signer returns the private half for components that sign records
// directly, such as cmd/tlcd's session engine. Callers must treat it
// as read-only.
func (k *KeyPair) Signer() *rsa.PrivateKey { return k.inner.Private }

// Plan is the data-plan fragment both parties agreed on at setup: the
// charging cycle T = [Start, End) and the lost-data weight c ∈ [0,1]
// (c=0 bills only received data; c=1 bills all sent data).
type Plan struct {
	Start time.Time
	End   time.Time
	C     float64
}

// Validate checks plan invariants.
func (p Plan) Validate() error {
	if !p.End.After(p.Start) {
		return errors.New("tlc: plan cycle is empty")
	}
	if p.C < 0 || p.C > 1 {
		return fmt.Errorf("tlc: lost-data weight c=%v outside [0,1]", p.C)
	}
	return nil
}

func (p Plan) wire() poc.Plan {
	return poc.Plan{TStart: p.Start.UnixNano(), TEnd: p.End.UnixNano(), C: p.C}
}

// Usage is a party's usage view for the cycle, in bytes: its estimate
// of what the edge sent (x̂e) and of what the edge received (x̂o).
type Usage struct {
	Sent     uint64
	Received uint64
}

// ExpectedCharge returns the plan-correct billing volume x̂ = x̂o +
// c·(x̂e − x̂o) for a usage pair.
func ExpectedCharge(p Plan, u Usage) uint64 {
	return poc.RoundVolume(core.Expected(p.C, float64(u.Sent), float64(u.Received)))
}

// Receipt is a settled negotiation.
type Receipt struct {
	// X is the agreed billing volume in bytes.
	X uint64
	// Rounds is the number of claim exchanges used.
	Rounds int
	// Proof is the serialized, doubly signed Proof-of-Charging.
	Proof []byte
}

// Negotiator drives one side of a TLC negotiation.
type Negotiator struct {
	party *protocol.Party
}

// NewNegotiator builds a negotiator. The peer's public key must have
// been exchanged beforehand (§5.3.1's key setup).
func NewNegotiator(role Role, plan Plan, keys *KeyPair, peer *rsa.PublicKey, usage Usage, strategy Strategy) *Negotiator {
	r := poc.RoleEdge
	if role == Operator {
		r = poc.RoleOperator
	}
	return &Negotiator{party: &protocol.Party{
		Role:     r,
		Plan:     plan.wire(),
		Keys:     keys.inner,
		PeerKey:  peer,
		Strategy: strategy.core(),
		View:     core.View{Sent: float64(usage.Sent), Received: float64(usage.Received)},
		RNG:      sim.NewRNG(time.Now().UnixNano()),
		Timeout:  30 * time.Second,
	}}
}

// SetTimeout overrides the per-message network timeout.
func (n *Negotiator) SetTimeout(d time.Duration) { n.party.Timeout = d }

// SetMaxRounds overrides the negotiation round cap.
func (n *Negotiator) SetMaxRounds(r int) { n.party.MaxRounds = r }

// SetSeed makes the negotiator's randomness deterministic (tests and
// simulations).
func (n *Negotiator) SetSeed(seed int64) { n.party.RNG = sim.NewRNG(seed) }

// Negotiate runs the protocol over the transport; set initiate on
// exactly one side. On success both sides hold the same receipt.
func (n *Negotiator) Negotiate(conn io.ReadWriter, initiate bool) (*Receipt, error) {
	res, err := n.party.Run(conn, initiate)
	if err != nil {
		return nil, err
	}
	proof, err := res.PoC.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &Receipt{X: res.X, Rounds: res.Rounds, Proof: proof}, nil
}

// Verify runs Algorithm 2 public verification on a serialized proof:
// plan coherence, both parties' signatures, nonce/sequence checks,
// and recomputation of the settled volume. Any third party holding
// the two public keys can call it.
func Verify(proof []byte, plan Plan, edgeKey, operatorKey *rsa.PublicKey) error {
	var p poc.PoC
	if err := p.UnmarshalBinary(proof); err != nil {
		return fmt.Errorf("tlc: decode proof: %w", err)
	}
	return poc.VerifyStateless(&p, plan.wire(), edgeKey, operatorKey)
}

// ProofVolume extracts the settled volume from a serialized proof
// without verifying it.
func ProofVolume(proof []byte) (uint64, error) {
	var p poc.PoC
	if err := p.UnmarshalBinary(proof); err != nil {
		return 0, fmt.Errorf("tlc: decode proof: %w", err)
	}
	return p.X, nil
}

// Verifier is a stateful public verifier that additionally rejects
// replayed proofs across calls (an FCC/court/MVNO auditor, §5.3.4).
type Verifier struct {
	inner *poc.Verifier
}

// NewVerifier builds a verifier for one edge/operator key pairing.
func NewVerifier(edgeKey, operatorKey *rsa.PublicKey) *Verifier {
	return &Verifier{inner: poc.NewVerifier(edgeKey, operatorKey)}
}

// Verify checks one proof against the published plan.
func (v *Verifier) Verify(proof []byte, plan Plan) error {
	var p poc.PoC
	if err := p.UnmarshalBinary(proof); err != nil {
		return fmt.Errorf("tlc: decode proof: %w", err)
	}
	return v.inner.Verify(&p, plan.wire())
}

// NegotiateLocal settles a cycle in-process given both parties' usage
// views: the simulation and single-binary path (no sockets). It
// returns the receipts seen by the initiator (operator) and responder
// (edge).
func NegotiateLocal(plan Plan, edgeKeys, opKeys *KeyPair, edgeUsage, opUsage Usage, edgeStrategy, opStrategy Strategy, seed int64) (*Receipt, *Receipt, error) {
	if err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	edge := NewNegotiator(Edge, plan, edgeKeys, opKeys.Public(), edgeUsage, edgeStrategy)
	op := NewNegotiator(Operator, plan, opKeys, edgeKeys.Public(), opUsage, opStrategy)
	edge.SetSeed(seed)
	op.SetSeed(seed + 1)
	ro, re, err := protocol.RunPair(op.party, edge.party)
	if err != nil {
		return nil, nil, err
	}
	opReceipt, err := receiptFrom(ro)
	if err != nil {
		return nil, nil, err
	}
	edgeReceipt, err := receiptFrom(re)
	if err != nil {
		return nil, nil, err
	}
	return opReceipt, edgeReceipt, nil
}

func receiptFrom(res *protocol.Result) (*Receipt, error) {
	proof, err := res.PoC.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &Receipt{X: res.X, Rounds: res.Rounds, Proof: proof}, nil
}

// LoadKeyPair reads a PKCS#8 PEM private key (as written by
// cmd/tlckeys or keyio.SavePrivateKey) and returns the full pair.
func LoadKeyPair(path string) (*KeyPair, error) {
	priv, err := keyio.LoadPrivateKey(path)
	if err != nil {
		return nil, err
	}
	return &KeyPair{inner: &poc.KeyPair{Private: priv, Public: &priv.PublicKey}}, nil
}
