package tlc

import (
	"fmt"
	"time"

	"tlc/internal/apps"
	"tlc/internal/experiment"
	"tlc/internal/netem"
)

// Scenario configures one charging cycle on the emulated testbed
// (edge device, small cell, LTE core, co-located edge server). It is
// the library-level entry to the machinery behind the paper's
// evaluation; examples/ and cmd/tlcbench build on it.
type Scenario struct {
	// App selects the workload: "WebCam-RTSP", "WebCam-UDP",
	// "VRidge-GVSP" or "Gaming-QCI7".
	App string
	// Downlink flips an uplink workload to downlink (the paper's
	// Figure 4 uses a downlink UDP WebCam).
	Downlink bool
	// Duration is the charging cycle length (default 60s).
	Duration time.Duration
	// C is the lost-data charging weight (default 0.5).
	C float64
	// BackgroundMbps adds iperf-style cross traffic.
	BackgroundMbps float64
	// OutageMeanGap/OutageMeanDur enable intermittent connectivity.
	OutageMeanGap time.Duration
	OutageMeanDur time.Duration
	// Seed fixes all randomness.
	Seed int64
}

// SchemeOutcome is one charging scheme's result on the cycle.
type SchemeOutcome struct {
	// Charge is the billed volume in bytes.
	Charge uint64
	// Gap is Δ = |charge − expected| in bytes; GapRatio is ε = Δ/x̂.
	Gap      uint64
	GapRatio float64
	// Rounds is the negotiation length (0 for legacy).
	Rounds int
}

// ScenarioReport summarises one cycle.
type ScenarioReport struct {
	// SentBytes and ReceivedBytes are the ground-truth usage pair
	// (x̂e, x̂o).
	SentBytes     uint64
	ReceivedBytes uint64
	// ExpectedCharge is the plan-correct x̂.
	ExpectedCharge uint64
	// Legacy, TLCOptimal and TLCRandom compare the schemes of §7.1.
	Legacy     SchemeOutcome
	TLCOptimal SchemeOutcome
	TLCRandom  SchemeOutcome
	// DisconnectRatio is the intermittent disconnectivity ratio η.
	DisconnectRatio float64
	// CDRs is the number of gateway charging records produced.
	CDRs int
}

// RunScenario executes the scenario and evaluates the three charging
// schemes on the same traffic.
func RunScenario(s Scenario) (*ScenarioReport, error) {
	prof, ok := apps.ProfileByName(s.App)
	if !ok {
		if s.App == "" {
			prof = apps.WebCamUDP
		} else {
			return nil, fmt.Errorf("tlc: unknown app %q", s.App)
		}
	}
	if s.Downlink {
		prof = prof.WithDirection(netem.Downlink)
	}
	c := s.C
	if c == 0 {
		c = 0.5
	}
	cfg := experiment.Config{
		App:            prof,
		Duration:       s.Duration,
		Seed:           s.Seed,
		C:              c,
		BackgroundMbps: s.BackgroundMbps,
	}
	if s.OutageMeanGap > 0 && s.OutageMeanDur > 0 {
		cfg.RSS = experiment.RSSSpec{Base: -90, MeanGap: s.OutageMeanGap, MeanOutage: s.OutageMeanDur}
	}
	r := experiment.NewTestbed(cfg).Run()
	res := experiment.EvaluateAll(r, s.Seed+1)

	mk := func(sr experiment.SchemeResult) SchemeOutcome {
		return SchemeOutcome{
			Charge:   uint64(sr.X),
			Gap:      uint64(sr.Delta),
			GapRatio: sr.Epsilon,
			Rounds:   sr.Rounds,
		}
	}
	return &ScenarioReport{
		SentBytes:       uint64(r.Truth.Sent),
		ReceivedBytes:   uint64(r.Truth.Received),
		ExpectedCharge:  uint64(r.XHat),
		Legacy:          mk(res[experiment.SchemeLegacy]),
		TLCOptimal:      mk(res[experiment.SchemeOptimal]),
		TLCRandom:       mk(res[experiment.SchemeRandom]),
		DisconnectRatio: r.Eta,
		CDRs:            r.CDRCount,
	}, nil
}

// Apps lists the available scenario workload names.
func Apps() []string {
	out := make([]string, len(apps.Workloads))
	for i, p := range apps.Workloads {
		out[i] = p.Name
	}
	return out
}
